"""Lowering of abstract modules to the three vendor ISAs.

A :class:`TargetISA` describes one virtual instruction set: its execution
width (warp/wavefront/sub-group), capability limits, and assembly
flavour.  :func:`legalize` turns an abstract :class:`ModuleIR` into a
:class:`TargetModule` for one ISA:

* ``warpsize`` special reads are constant-folded to the ISA's width
  (real binaries bake this in the same way);
* cross-lane shuffles are checked against the ISA's supported modes;
* shared-memory footprints are checked against the ISA's segment size.

Devices (:mod:`repro.gpu.device`) refuse to load a :class:`TargetModule`
whose ISA differs from their own — that refusal is the mechanism that
makes the paper's compatibility matrix *real* in this simulator: a
toolchain that cannot emit AMDGCN simply cannot put code on a simulated
MI250X.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enums import ISA
from repro.errors import LegalizationError
from repro.isa import dtypes
from repro.isa.instructions import (
    Imm,
    Instruction,
    If,
    Mov,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    SpecialReg,
    While,
)
from repro.isa.module import KernelIR, ModuleIR, TargetModule, clone_ir


@dataclass(frozen=True)
class TargetISA:
    """Capabilities of one virtual instruction set."""

    isa: ISA
    name: str
    warp_size: int
    max_shared_bytes: int
    shuffle_modes: frozenset[str]
    fp64: bool
    description: str


_PTX = TargetISA(
    isa=ISA.PTX,
    name="ptx",
    warp_size=32,
    max_shared_bytes=228 * 1024,  # Hopper-generation shared/L1 carveout
    shuffle_modes=frozenset({"idx", "up", "down", "xor"}),
    fp64=True,
    description="NVIDIA parallel thread execution virtual ISA",
)

_AMDGCN = TargetISA(
    isa=ISA.AMDGCN,
    name="amdgcn",
    warp_size=64,  # CDNA wavefront
    max_shared_bytes=64 * 1024,  # LDS per workgroup
    shuffle_modes=frozenset({"idx", "up", "down", "xor"}),
    fp64=True,
    description="AMD GCN/CDNA machine ISA",
)

_SPIRV = TargetISA(
    isa=ISA.SPIRV,
    name="spirv",
    warp_size=16,  # Xe-HPC default sub-group size
    max_shared_bytes=128 * 1024,  # Xe-core SLM
    shuffle_modes=frozenset({"idx", "xor", "up", "down"}),
    fp64=True,
    description="Khronos SPIR-V with Intel Xe sub-group semantics",
)

_TARGETS: dict[ISA, TargetISA] = {
    ISA.PTX: _PTX,
    ISA.AMDGCN: _AMDGCN,
    ISA.SPIRV: _SPIRV,
}


def get_target(isa: ISA) -> TargetISA:
    """Look up the capability record for an ISA."""
    return _TARGETS[isa]


def _legalize_body(body: list[Instruction], target: TargetISA, kernel: str) -> None:
    for pos, instr in enumerate(body):
        if isinstance(instr, SpecialRead) and instr.which == SpecialReg.WARPSIZE:
            body[pos] = Mov(instr.dst, Imm(target.warp_size, dtypes.U32))
        elif isinstance(instr, Shuffle):
            if instr.mode not in target.shuffle_modes:
                raise LegalizationError(
                    f"kernel '{kernel}': shuffle mode '{instr.mode}' is not "
                    f"available on {target.name}"
                )
        elif isinstance(instr, If):
            _legalize_body(instr.then_body, target, kernel)
            _legalize_body(instr.else_body, target, kernel)
        elif isinstance(instr, While):
            _legalize_body(instr.cond_body, target, kernel)
            _legalize_body(instr.body, target, kernel)


def _legalize_kernel(kernel: KernelIR, target: TargetISA) -> KernelIR:
    lowered = clone_ir(kernel)
    if lowered.shared_bytes > target.max_shared_bytes:
        raise LegalizationError(
            f"kernel '{kernel.name}' uses {lowered.shared_bytes} B shared "
            f"memory; {target.name} provides {target.max_shared_bytes} B"
        )
    has_fp64 = any(
        isinstance(i, SharedAlloc) and i.dtype == dtypes.F64 for i in lowered.body
    ) or any(
        getattr(op, "dtype", None) == dtypes.F64
        for instr in _walk(lowered.body)
        for op in _operands(instr)
    )
    if has_fp64 and not target.fp64:
        raise LegalizationError(
            f"kernel '{kernel.name}' uses fp64, unsupported on {target.name}"
        )
    _legalize_body(lowered.body, target, kernel.name)
    return lowered


def legalize(module: ModuleIR, isa: ISA, producer: str = "unknown") -> TargetModule:
    """Lower an abstract module to a loadable binary for ``isa``."""
    target = get_target(isa)
    lowered = ModuleIR(name=module.name)
    for kernel in module:
        lowered.add(_legalize_kernel(kernel, target))
    return TargetModule(
        module=lowered, isa=isa, warp_size=target.warp_size, producer=producer
    )


def _walk(body):
    from repro.isa.instructions import walk

    return walk(body)


def _operands(instr: Instruction):
    for attr in ("dst", "src", "a", "b", "pred", "addr", "cond", "lane", "compare"):
        op = getattr(instr, attr, None)
        if op is not None and hasattr(op, "dtype"):
            yield op
