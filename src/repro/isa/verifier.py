"""Structural and type verification of kernel IR.

Frontends are many (every programming model lowers through the IR), so
a strict verifier catches miscompiles at build time instead of as silent
NumPy broadcasting surprises inside the interpreter.  The checks:

* every operand register is defined before use (conservative dataflow
  over the structured control-flow tree);
* one name, one dtype per path — a register may be reassigned but never
  retyped; exclusive ``If`` arms may each bind a fresh name differently,
  and such a name is only defined after the join when the arms agree;
* per-instruction typing rules (e.g. ``BinOp`` operands and destination
  share one dtype; comparison destinations are predicates);
* shared-memory allocations only at the kernel top level;
* ``While`` conditions are computed inside their own ``cond_body``.
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.isa import dtypes
from repro.isa.instructions import (
    ATOMIC_OPS,
    BINARY_OPS,
    CMP_OPS,
    SHUFFLE_MODES,
    UNARY_OPS,
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Instruction,
    Load,
    MemSpace,
    Mov,
    Operand,
    Register,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    SpecialReg,
    Store,
    UnaryOp,
    While,
)
from repro.isa.module import KernelIR, ModuleIR

#: Binary ops restricted to integer operands.
_INT_ONLY_BINOPS = {"shl", "shr"}
#: Binary ops additionally allowed on predicates (logical connectives).
_PRED_BINOPS = {"and", "or", "xor"}
#: Unary float-only transcendentals.
_FLOAT_ONLY_UNARY = {"sqrt", "rsqrt", "exp", "log", "sin", "cos", "tanh"}


class _TypeMap:
    """Copy-on-write register-type map.

    Branch scopes layer a private overlay over the parent map, so a
    dtype observed inside one ``If`` arm never leaks into the sibling
    arm or the outer scope.  (A shared dict here used to reject kernels
    whose arms each define a scratch register under the same name with
    different dtypes — a spurious "retyped" error across exclusive
    paths.)
    """

    def __init__(self, parent: "_TypeMap | None" = None):
        self._parent = parent
        self._local: dict[str, dtypes.DType] = {}

    def get(self, name: str) -> dtypes.DType | None:
        m: _TypeMap | None = self
        while m is not None:
            if name in m._local:
                return m._local[name]
            m = m._parent
        return None

    def set(self, name: str, dtype: dtypes.DType) -> None:
        self._local[name] = dtype


class _Scope:
    """Tracks defined registers and their dtypes along one path."""

    def __init__(self, defined: set[str], types: _TypeMap):
        self.defined = defined
        self.types = types

    def clone(self) -> "_Scope":
        return _Scope(set(self.defined), _TypeMap(parent=self.types))

    def define(self, reg: Register, where: str) -> None:
        prev = self.types.get(reg.name)
        if prev is not None and prev != reg.dtype:
            raise VerificationError(
                f"{where}: register '{reg.name}' retyped from {prev.name} "
                f"to {reg.dtype.name}"
            )
        self.types.set(reg.name, reg.dtype)
        self.defined.add(reg.name)

    def use(self, op: Operand, where: str) -> None:
        if isinstance(op, Imm):
            return
        if op.name not in self.defined:
            raise VerificationError(
                f"{where}: register '{op.name}' used before definition"
            )
        bound = self.types.get(op.name)
        if bound != op.dtype:
            raise VerificationError(
                f"{where}: register '{op.name}' used as {op.dtype.name} but "
                f"defined as {bound.name}"
            )


def _check_same(where: str, *operands: Operand) -> None:
    first = operands[0].dtype
    for op in operands[1:]:
        if op.dtype != first:
            raise VerificationError(
                f"{where}: operand dtypes disagree "
                f"({', '.join(o.dtype.name for o in operands)})"
            )


def _verify_body(body: list[Instruction], scope: _Scope, kernel: str,
                 top_level: bool) -> None:
    for pos, instr in enumerate(body):
        where = f"kernel '{kernel}', {type(instr).__name__} @{pos}"

        if isinstance(instr, Mov):
            scope.use(instr.src, where)
            _check_same(where, instr.dst, instr.src)
            scope.define(instr.dst, where)

        elif isinstance(instr, UnaryOp):
            if instr.op not in UNARY_OPS:
                raise VerificationError(f"{where}: bad unary op '{instr.op}'")
            scope.use(instr.src, where)
            if instr.op in _FLOAT_ONLY_UNARY and not instr.src.dtype.is_float:
                raise VerificationError(
                    f"{where}: '{instr.op}' requires a float operand"
                )
            if instr.op == "not":
                if not (instr.src.dtype.is_pred and instr.dst.dtype.is_pred):
                    raise VerificationError(f"{where}: 'not' is predicate-only")
            else:
                _check_same(where, instr.dst, instr.src)
            scope.define(instr.dst, where)

        elif isinstance(instr, BinOp):
            if instr.op not in BINARY_OPS:
                raise VerificationError(f"{where}: bad binary op '{instr.op}'")
            scope.use(instr.a, where)
            scope.use(instr.b, where)
            _check_same(where, instr.dst, instr.a, instr.b)
            dt = instr.a.dtype
            if dt.is_pred and instr.op not in _PRED_BINOPS:
                raise VerificationError(
                    f"{where}: '{instr.op}' not defined on predicates"
                )
            if instr.op in _INT_ONLY_BINOPS and not dt.is_integer:
                raise VerificationError(
                    f"{where}: '{instr.op}' requires integer operands"
                )
            scope.define(instr.dst, where)

        elif isinstance(instr, Cmp):
            if instr.op not in CMP_OPS:
                raise VerificationError(f"{where}: bad comparison '{instr.op}'")
            scope.use(instr.a, where)
            scope.use(instr.b, where)
            _check_same(where, instr.a, instr.b)
            if not instr.dst.dtype.is_pred:
                raise VerificationError(f"{where}: comparison dst must be pred")
            scope.define(instr.dst, where)

        elif isinstance(instr, Select):
            scope.use(instr.pred, where)
            scope.use(instr.a, where)
            scope.use(instr.b, where)
            if not instr.pred.dtype.is_pred:
                raise VerificationError(f"{where}: select predicate must be pred")
            _check_same(where, instr.dst, instr.a, instr.b)
            scope.define(instr.dst, where)

        elif isinstance(instr, Cvt):
            scope.use(instr.src, where)
            # Conversions are numeric-only: predicates have no arithmetic
            # representation in any backend ISA (PTX `selp`/`setp` and the
            # AMDGCN mask registers both special-case them), so pred on
            # either side is a frontend bug, not a cast.
            if instr.src.dtype.is_pred or instr.dst.dtype.is_pred:
                raise VerificationError(
                    f"{where}: cannot convert "
                    f"{instr.src.dtype.name} to {instr.dst.dtype.name}; "
                    "predicates are not convertible (use Select)"
                )
            scope.define(instr.dst, where)

        elif isinstance(instr, Load):
            scope.use(instr.addr, where)
            if instr.addr.dtype != dtypes.U64:
                raise VerificationError(f"{where}: load address must be u64")
            if instr.space not in MemSpace.ALL:
                raise VerificationError(f"{where}: bad space '{instr.space}'")
            scope.define(instr.dst, where)

        elif isinstance(instr, Store):
            scope.use(instr.addr, where)
            scope.use(instr.src, where)
            if instr.addr.dtype != dtypes.U64:
                raise VerificationError(f"{where}: store address must be u64")
            if instr.space not in MemSpace.ALL:
                raise VerificationError(f"{where}: bad space '{instr.space}'")

        elif isinstance(instr, SpecialRead):
            if instr.which not in SpecialReg.ALL:
                raise VerificationError(
                    f"{where}: bad special register '{instr.which}'"
                )
            if instr.dst.dtype != dtypes.U32:
                raise VerificationError(f"{where}: special reads are u32")
            scope.define(instr.dst, where)

        elif isinstance(instr, AtomicOp):
            if instr.op not in ATOMIC_OPS:
                raise VerificationError(f"{where}: bad atomic '{instr.op}'")
            scope.use(instr.addr, where)
            scope.use(instr.src, where)
            if instr.addr.dtype != dtypes.U64:
                raise VerificationError(f"{where}: atomic address must be u64")
            if instr.op == "cas":
                if instr.compare is None:
                    raise VerificationError(f"{where}: cas requires compare value")
                scope.use(instr.compare, where)
                _check_same(where, instr.src, instr.compare)
            if instr.dst is not None:
                _check_same(where, instr.dst, instr.src)
                scope.define(instr.dst, where)

        elif isinstance(instr, Shuffle):
            if instr.mode not in SHUFFLE_MODES:
                raise VerificationError(f"{where}: bad shuffle mode '{instr.mode}'")
            scope.use(instr.src, where)
            scope.use(instr.lane, where)
            if instr.lane.dtype != dtypes.U32:
                raise VerificationError(f"{where}: shuffle lane must be u32")
            _check_same(where, instr.dst, instr.src)
            scope.define(instr.dst, where)

        elif isinstance(instr, SharedAlloc):
            if not top_level:
                raise VerificationError(
                    f"{where}: shared memory must be allocated at top level"
                )
            if instr.count <= 0:
                raise VerificationError(f"{where}: shared count must be positive")
            if instr.dst.dtype != dtypes.U64:
                raise VerificationError(f"{where}: shared base must be u64")
            scope.define(instr.dst, where)

        elif isinstance(instr, (Barrier, Exit)):
            pass

        elif isinstance(instr, If):
            scope.use(instr.cond, where)
            if instr.cond.dtype != dtypes.PRED:
                raise VerificationError(f"{where}: if condition must be pred")
            then_scope = scope.clone()
            else_scope = scope.clone()
            _verify_body(instr.then_body, then_scope, kernel, False)
            _verify_body(instr.else_body, else_scope, kernel, False)
            # Only definitions made on *both* paths survive the join, and
            # only when the two arms agree on the dtype; a name typed
            # differently per arm stays undefined afterwards (each arm's
            # view was private, so neither leaks).
            for name in then_scope.defined & else_scope.defined:
                if name in scope.defined:
                    continue  # already live before the If
                t_then = then_scope.types.get(name)
                t_else = else_scope.types.get(name)
                if t_then == t_else and t_then is not None:
                    scope.types.set(name, t_then)
                    scope.defined.add(name)

        elif isinstance(instr, While):
            if instr.cond is None or instr.cond.dtype != dtypes.PRED:
                raise VerificationError(f"{where}: while condition must be pred")
            cond_scope = scope.clone()
            _verify_body(instr.cond_body, cond_scope, kernel, False)
            cond_scope.use(instr.cond, where + " (condition)")
            body_scope = cond_scope.clone()
            _verify_body(instr.body, body_scope, kernel, False)
            # Definitions inside the loop may never happen (zero trips):
            # nothing new joins the outer scope.

        else:
            raise VerificationError(f"{where}: unknown instruction")


def verify_kernel(kernel: KernelIR) -> None:
    """Verify one kernel; raises :class:`VerificationError` on failure."""
    scope = _Scope(set(), _TypeMap())
    for p in kernel.params:
        scope.define(p.reg, f"kernel '{kernel.name}' params")
    _verify_body(kernel.body, scope, kernel.name, top_level=True)


def verify_module(module: ModuleIR) -> None:
    """Verify every kernel in a module."""
    for kernel in module:
        verify_kernel(kernel)
