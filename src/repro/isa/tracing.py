"""Trace compiler: fuse one interpreter batch into a generated NumPy program.

The batched interpreter (PR 2) executes one IR instruction at a time,
re-deciding masks, operand shapes, and memory-path legality on every
``step()``.  For the hot kernels that cost is now dominated by Python
dispatch, not NumPy work.  This module records the per-batch instruction
sequence **once** per ``(kernel fingerprint, warp size, grid, block,
blocks_per_batch)`` and compiles it into a single generated-and-``exec``'d
Python function over the executor's lane arrays — the same content-keyed
caching idiom as the toolchain compile cache.

The one invariant that matters
------------------------------
**The traced path must be bit-identical to the interpreted path, or it
doesn't run.**  Every emitted operation is the *same NumPy call on the
same dtypes* the interpreter would have made, including:

* full-width arithmetic — inactive lanes compute the same garbage from
  the same garbage, so register files match exactly;
* ``assign`` merge semantics (replace on first/full assignment, masked
  in-place merge otherwise), replicated by the ``_rt_assign`` helper;
* memory faults, divergent-barrier errors, and runaway-loop errors with
  the interpreter's exact messages, raised at the same program point;
* work counters (instructions/flops/bytes/atomics/barriers) accumulated
  with exact per-instruction active-lane counts.

Fast paths (contiguous global slices, per-block shared-row slices,
prefix masks) are taken only behind compile-time *and* runtime guards
that prove the result equals the generic path; otherwise the generated
code falls through to helpers that mirror the interpreter line by line.

Bailout taxonomy
----------------
Compilation refuses (and the launch transparently falls back to the
batched interpreter) with one of these cached reasons:

* ``shuffle`` — cross-lane shuffles (warp tables + clamping stay in the
  interpreter);
* ``atomic_cas`` — first-lane-wins CAS scheduling;
* ``exit`` — ``Exit`` retires lanes via a batch-wide mask the trace does
  not model;
* ``too_large`` — instruction count above ``_MAX_TRACE_INSTRS``;
* ``unsupported`` — anything else the compiler cannot prove exact
  (non-top-level ``SharedAlloc``, reads of not-definitely-defined
  registers, unknown ops).

Bailouts are cached like programs, so a kernel pays the analysis once.
"""

from __future__ import annotations

import hashlib
import re
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import DivergentBarrierError, IRError, MemoryFaultError
from repro.gpu.memory import DeviceMemory
from repro.isa import dtypes
from repro.isa.instructions import (
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Load,
    MemSpace,
    Mov,
    Register,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    Store,
    UnaryOp,
    While,
)
from repro.isa.module import KernelIR

#: Bump when generated-code semantics change; part of every trace key.
TRACE_SCHEMA = 1

#: Kernels above this instruction count bail out (``too_large``).
_MAX_TRACE_INSTRS = 512

#: Compiled programs (and cached bailouts) kept process-wide, FIFO.
_MAX_PROGRAMS = 256

#: The bailout-reason taxonomy (see module docstring).
BAILOUT_REASONS = ("shuffle", "atomic_cas", "exit", "too_large", "unsupported")

_ENV_VAR = "REPRO_TRACE_MODE"

_MAX_LOOP_TRIPS = 10_000_000  # keep in sync with interpreter._MAX_LOOP_TRIPS


class TraceBailout(Exception):
    """Raised by the compiler when a kernel cannot be traced exactly."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason
        self.detail = detail


@dataclass
class TracedProgram:
    """One compiled trace: the generated source and its callable.

    ``fn(executor, batch, args, stats)`` executes one batch and folds the
    batch's work counters into ``stats`` — a drop-in replacement for
    ``KernelExecutor._run_batch``.
    """

    key: str
    kernel_name: str
    source: str
    fn: object
    #: tracesan verdict cached alongside the program (filled lazily when
    #: a caller passes ``validate=True`` to :func:`lookup`).
    verdict: object = None


#: key -> TracedProgram, or a bailout-reason string for cached refusals.
_CACHE: dict[str, object] = {}
_CACHE_LOCK = threading.Lock()

_default_mode: bool | None = None


def default_trace_mode() -> bool:
    """Process default for ``trace_mode=None`` executors.

    ``set_default_trace_mode()`` wins; otherwise the ``REPRO_TRACE_MODE``
    environment variable (``off``/``0``/``false``/``no`` disable), and
    tracing is on by default.
    """
    if _default_mode is not None:
        return _default_mode
    import os

    raw = os.environ.get(_ENV_VAR, "on").strip().lower()
    return raw not in ("off", "0", "false", "no")


def set_default_trace_mode(mode: bool | None) -> None:
    """Override (or, with ``None``, restore) the process trace default."""
    global _default_mode
    _default_mode = None if mode is None else bool(mode)


def clear_trace_cache() -> None:
    """Drop all compiled programs and cached bailouts (test isolation)."""
    with _CACHE_LOCK:
        _CACHE.clear()


def trace_cache_size() -> int:
    with _CACHE_LOCK:
        return len(_CACHE)


def kernel_fingerprint(kernel: KernelIR) -> str:
    """Structural content hash of one kernel, compile-cache style.

    Mirrors the store's ``_kernel_library_fingerprint`` idiom: signature,
    instruction/operand reprs, and feature tags.
    """
    h = hashlib.sha256()
    h.update(f"trace-schema={TRACE_SCHEMA}".encode())
    params = ",".join(
        f"{p.name}:{'*' if p.is_pointer else ''}{p.dtype.name}"
        for p in kernel.params
    )
    h.update(f"#{kernel.name}({params})".encode())
    h.update(repr(kernel.body).encode())
    for tag in sorted(kernel.features):
        h.update(f"+{tag}".encode())
    return h.hexdigest()


def trace_key(kernel: KernelIR, warp_size: int,
              grid: tuple[int, int, int], block: tuple[int, int, int],
              blocks_per_batch: int) -> str:
    """Content-addressed key of one (kernel, geometry, batch width)."""
    h = hashlib.sha256()
    h.update(kernel_fingerprint(kernel).encode())
    h.update(f"|warp={warp_size}|grid={grid}|block={block}"
             f"|bpb={blocks_per_batch}".encode())
    return h.hexdigest()


def _count(outcome: str, reason: str | None = None) -> None:
    """Fold one cache outcome into the process-wide interpreter totals."""
    from repro.isa import interpreter as _interp

    with _interp._TOTALS_LOCK:
        tr = _interp._TOTALS.trace
        if outcome == "hit":
            tr.hits += 1
        elif outcome == "miss":
            tr.misses += 1
        else:
            tr.bailouts += 1
            tr.reasons[reason] = tr.reasons.get(reason, 0) + 1


def lookup(executor, grid: tuple[int, int, int], block: tuple[int, int, int],
           blocks_per_batch: int, *,
           validate: bool = False) -> TracedProgram | None:
    """The traced program for one launch shape, compiling on first use.

    Returns ``None`` (after recording the bailout) when the kernel can't
    be traced; the caller falls back to the batched interpreter.  Cache
    outcomes (hit/miss/bailout + reason) flow into
    ``interpreter_totals().trace``.

    ``validate=True`` additionally runs the tracesan translation
    validator (:func:`repro.analysis.tracesan.validate_program`) over the
    generated source and caches the :class:`TraceVerdict` on the
    program's ``verdict`` field — once per cached program, purely static,
    never executing the kernel.
    """
    key = trace_key(executor.kernel, executor.warp_size, grid, block,
                    blocks_per_batch)
    with _CACHE_LOCK:
        entry = _CACHE.get(key)
    if entry is None:
        try:
            compiler = _TraceCompiler(executor.kernel, executor.warp_size,
                                      grid, block, blocks_per_batch)
            source = compiler.compile()
            fn = _exec_program(source, executor.kernel.name, key)
            entry = TracedProgram(key=key, kernel_name=executor.kernel.name,
                                  source=source, fn=fn)
            outcome = "miss"
        except TraceBailout as exc:
            entry = exc.reason
            outcome = "bailout"
        except Exception:  # defensive: an untraceable corner is a bailout
            entry = "unsupported"
            outcome = "bailout"
        with _CACHE_LOCK:
            if len(_CACHE) >= _MAX_PROGRAMS:
                _CACHE.pop(next(iter(_CACHE)))
            entry = _CACHE.setdefault(key, entry)
    else:
        outcome = "hit" if isinstance(entry, TracedProgram) else "bailout"
    if isinstance(entry, TracedProgram):
        if validate and entry.verdict is None:
            from repro.analysis import tracesan as _tracesan

            entry.verdict = _tracesan.validate_program(
                executor.kernel, entry.source, executor.warp_size,
                grid, block, blocks_per_batch, key=entry.key)
        _count(outcome)
        return entry
    _count("bailout" if outcome != "bailout" else outcome, entry)
    return None


def cached_bailout_reason(kernel: KernelIR, warp_size: int, grid, block,
                          blocks_per_batch: int) -> str | None:
    """The cached bailout reason for one shape, if any (introspection)."""
    key = trace_key(kernel, warp_size, tuple(grid), tuple(block),
                    blocks_per_batch)
    with _CACHE_LOCK:
        entry = _CACHE.get(key)
    return entry if isinstance(entry, str) else None


# -- runtime helpers injected into generated programs -------------------------
#
# Each replicates the corresponding interpreter code path line by line;
# the generated code calls them only where the interpreter would have
# performed the identical operations.


def _rt_assign(old, values, eff, eff_n: int, lanes: int, npdt, copy: bool):
    """``_ExecState.assign`` with the register's array threaded explicitly.

    ``eff_n == lanes`` stands in for ``eff.all()`` (the caller passes the
    exact active-lane count); ``eff`` may be None in that case.
    """
    arr = np.asarray(values)
    if arr.dtype != npdt:
        arr = arr.astype(npdt)
    if arr.ndim == 0:
        arr = np.full(lanes, arr)
    elif copy:
        arr = arr.copy()
    if old is None or eff_n == lanes:
        return arr
    if old is not arr:
        old[eff] = arr[eff]
    return old


def _rt_resolve(X, B, svs, addr, eff, dt, is_global: bool, write: bool):
    """``_ExecState._resolve`` for a full-array address operand.

    Item sizes are always powers of two, so alignment, bounds, and
    element-index math use bit ops and a scalar ``max`` reduction in
    place of the interpreter's modulo/divide/compare sweeps — same
    verdict and indices, fewer full-width temporaries.
    """
    isz = dt.itemsize
    active = addr if eff is None else addr[eff]
    if isz > 1 and (active & (isz - 1)).any():
        raise MemoryFaultError(
            f"kernel '{X.kernel.name}': misaligned {dt.name} access"
        )
    shift = isz.bit_length() - 1
    idx = (addr >> shift).astype(np.int64) if shift else addr.astype(np.int64)

    def _hi():
        return int(active.max()) if active.size else -isz

    if is_global:
        if X.validator is not None:
            X.validator(active, isz, write)
        elif _hi() + isz > X.gmem.size:
            raise MemoryFaultError("global access out of device memory")
        view = X._gview(dt)
    else:
        limit = X._shared_bytes
        if _hi() + isz > limit:
            raise MemoryFaultError(
                f"kernel '{X.kernel.name}': shared access beyond "
                f"{limit} allocated bytes"
            )
        view = svs[dt.name]
        idx += B.block_row * (X._shared_stride // isz)
    if eff is not None and not eff.all():
        np.copyto(idx, 0, where=~eff)
    return view, idx


def _rt_atomic(view, idx, eff, src, op: str, want_old: bool,
               lanes: int, npdt):
    """``_ExecState._atomic`` minus CAS (CAS bails out of tracing)."""
    from repro.isa.interpreter import _ExecState

    sel = idx if eff is None else idx[eff]
    vals = src if eff is None else src[eff]
    if op == "add":
        old = _ExecState._prefix_old(view, sel, vals) if want_old else None
        np.add.at(view, sel, vals)
    elif op == "min":
        old = view[sel].copy() if want_old else None
        np.minimum.at(view, sel, vals)
    elif op == "max":
        old = view[sel].copy() if want_old else None
        np.maximum.at(view, sel, vals)
    elif op == "exch":
        old = view[sel].copy() if want_old else None
        view[sel] = vals
    else:  # pragma: no cover - compiler bails on anything else
        raise IRError(f"unknown atomic '{op}'")
    if not want_old:
        return None
    full_old = np.zeros(lanes, dtype=npdt)
    if eff is None:
        full_old[:] = old
    else:
        full_old[eff] = old
    return full_old


def _rt_barrier(X, B, eff) -> int:
    """``Barrier`` legality under a partial mask (no-Exit traces only)."""
    act = eff.reshape(B.n_blocks, B.block_threads)
    live = np.ones((B.n_blocks, B.block_threads), dtype=bool)
    arrived = act.any(axis=1)
    partial = arrived & (act != live).any(axis=1)
    if partial.any():
        i = int(np.argmax(partial))
        raise DivergentBarrierError(
            f"kernel '{X.kernel.name}': barrier reached by "
            f"{int(act[i].sum())} of {int(live[i].sum())} live "
            f"threads in block {B.first_block + i}"
        )
    return int(arrived.sum())


def _rt_span_ok(X, lo: int, count: int, itemsize: int) -> bool:
    """True iff the contiguous element run is provably legal AND the
    interpreter's generic checks would accept it unchanged.

    Conservative: ``False`` routes the access to the generic path (which
    replicates the interpreter's checks and exact error messages), never
    the other way around.  The ``2**63`` cap preserves the interpreter's
    int64 bounds arithmetic bug-for-bug.
    """
    if lo < 0 or count <= 0:
        return False
    end = lo + count * itemsize
    if end > 2 ** 63:
        return False
    v = X.validator
    if v is None:
        return end <= X.gmem.size
    if getattr(v, "__func__", None) is DeviceMemory.validate:
        return v.__self__.validate_contig(lo, count, itemsize)
    return False


def _rt_cdiv(a, b):
    from repro.isa.interpreter import _c_int_div

    return _c_int_div(np.asarray(a), np.asarray(b))


def _rt_crem(a, b):
    from repro.isa.interpreter import _c_int_rem

    return _c_int_rem(np.asarray(a), np.asarray(b))


def _exec_namespace() -> dict:
    return {
        "np": np,
        "DT": dict(dtypes.SCALAR_TYPES),
        "_assign": _rt_assign,
        "_resolve": _rt_resolve,
        "_atomic": _rt_atomic,
        "_barrier": _rt_barrier,
        "_span_ok": _rt_span_ok,
        "_cdiv": _rt_cdiv,
        "_crem": _rt_crem,
        "IRError": IRError,
        "MemoryFaultError": MemoryFaultError,
        "DivergentBarrierError": DivergentBarrierError,
    }


def _exec_program(source: str, kernel_name: str, key: str):
    g = _exec_namespace()
    code = compile(source, f"<trace:{kernel_name}:{key[:12]}>", "exec")
    exec(code, g)
    return g["_trace"]


# -- compile-time value model -------------------------------------------------


class _Aff:
    """Affine lane model: ``value = sc*SYM + d0 + dfb*fb + cbl*t + crow*row``
    where ``fb`` is the batch's first block, ``t`` the lane's linear index
    within its block, ``row`` its block's index within the batch, and
    ``SYM`` an optional runtime-uniform Python int bound in the generated
    code.  ``lo``/``hi`` bound the non-SYM part over the full geometric
    ranges (so the model holds for *every* lane, active or not), and
    ``guards`` are runtime int-comparison expressions that must all hold
    for the model (no dtype wraparound) to be exact.
    """

    __slots__ = ("sym", "sc", "d0", "dfb", "cbl", "crow", "lo", "hi",
                 "guards")

    def __init__(self, sym, sc, d0, dfb, cbl, crow, lo, hi, guards=()):
        self.sym = sym
        self.sc = sc
        self.d0 = d0
        self.dfb = dfb
        self.cbl = cbl
        self.crow = crow
        self.lo = lo
        self.hi = hi
        self.guards = tuple(guards)


class _Prefix:
    """Cmp result known to be a prefix mask: lane-prefix (``lin``) of
    ``thr`` lanes, or per-block thread-prefix (``block``) of ``thr``
    threads.  ``thr`` is a Python-int expression (pre-clamp)."""

    __slots__ = ("kind", "thr")

    def __init__(self, kind, thr):
        self.kind = kind
        self.thr = thr


class _Val:
    """What the compiler knows about one operand/register value."""

    __slots__ = ("expr", "dtype", "uniform", "const", "aff", "prefix")

    def __init__(self, expr, dtype, uniform, const=None, aff=None,
                 prefix=None):
        self.expr = expr
        self.dtype = dtype
        self.uniform = uniform
        self.const = const
        self.aff = aff
        self.prefix = prefix


class _Ctx:
    """Active-mask context of the instruction being emitted.

    kind ``full``: all lanes active (statically).  ``lin``: the first
    ``k`` lanes of the batch.  ``block``: the first ``k`` threads of
    every block.  ``gen``: arbitrary mask.  ``n`` is a Python-int
    expression for the exact active-lane count; ``arr`` a bool-array
    expression equal to the mask (None for ``full``).
    """

    __slots__ = ("kind", "n", "arr", "k")

    def __init__(self, kind, n, arr=None, k=None):
        self.kind = kind
        self.n = n
        self.arr = arr
        self.k = k


_CMP_FNS = {"eq": "np.equal", "ne": "np.not_equal", "lt": "np.less",
            "le": "np.less_equal", "gt": "np.greater",
            "ge": "np.greater_equal"}

_UNARY_FNS = {"neg": "np.negative", "abs": "np.abs", "sqrt": "np.sqrt",
              "exp": "np.exp", "log": "np.log", "sin": "np.sin",
              "cos": "np.cos", "tanh": "np.tanh", "floor": "np.floor",
              "ceil": "np.ceil", "round": "np.rint",
              "not": "np.logical_not", "bitnot": "np.bitwise_not"}

#: Unary ops whose result dtype equals the operand dtype.
_UNARY_SAME_DT = ("neg", "abs", "bitnot")


def _np_name(dt: dtypes.DType) -> str:
    name = dt.np_dtype.name
    return "bool_" if name == "bool" else name


def _int_bounds(dt: dtypes.DType) -> tuple[int, int]:
    bits = dt.itemsize * 8
    if dt.np_dtype.kind == "u":
        return 0, (1 << bits) - 1
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


#: Generated-code local names (``r<n>``) — used by the deferral pass to
#: find register references in emitted lines.
_LOCAL_RE = re.compile(r"\br(\d+)\b")


def _dst_of(ins):
    if isinstance(ins, (Mov, UnaryOp, BinOp, Cmp, Select, Cvt, Load,
                        SpecialRead, SharedAlloc)):
        return ins.dst
    if isinstance(ins, AtomicOp):
        return ins.dst
    return None


def _assigned_names(body) -> set:
    out = set()
    for ins in body:
        d = _dst_of(ins)
        if d is not None:
            out.add(d.name)
        if isinstance(ins, If):
            out |= _assigned_names(ins.then_body)
            out |= _assigned_names(ins.else_body)
        elif isinstance(ins, While):
            out |= _assigned_names(ins.cond_body)
            out |= _assigned_names(ins.body)
    return out


class _TraceCompiler:
    """Compiles one kernel × launch geometry into Python source.

    The generated function has the signature
    ``_trace(X, B, args, stats)`` — executor, batch, raw args, and the
    launch's ``LaunchStats`` — and is bit-identical to
    ``KernelExecutor._run_batch`` on the same batch or it raises
    :class:`TraceBailout` at compile time.
    """

    def __init__(self, kernel: KernelIR, warp_size: int, grid, block,
                 blocks_per_batch: int):
        self.k = kernel
        self.warp = int(warp_size)
        self.grid = tuple(grid)
        self.block = tuple(block)
        self.bpb = int(blocks_per_batch)
        self.bt = self.block[0] * self.block[1] * self.block[2]
        self.total_blocks = self.grid[0] * self.grid[1] * self.grid[2]
        self.rows_max = min(self.bpb, self.total_blocks)
        self.dims = {
            "ntid.x": self.block[0], "ntid.y": self.block[1],
            "ntid.z": self.block[2], "nctaid.x": self.grid[0],
            "nctaid.y": self.grid[1], "nctaid.z": self.grid[2],
        }
        self.uses_shared = kernel.uses_shared()
        self.shared_bytes = max(kernel.shared_bytes, 8)
        self.shared_stride = -(-self.shared_bytes // 16) * 16
        self.lines: list[str] = []
        self.ind = 1
        self.tmp_n = 0
        self.depth = 0
        self.shared_cursor = 0
        self.vals: dict[str, _Val] = {}
        self.defined: set[str] = set()
        self.varying: set[str] = set()
        self.merge: set[str] = set()
        self.counts: dict[str, int] = {}
        self.regdt: dict[str, dtypes.DType] = {}
        self.locals_: dict[str, str] = {}
        self.global_dts: set[str] = set()
        self.shared_dts: set[str] = set()
        # Deferral (two-pass): pass 1 logs every emitted line and which
        # were inside a fast-path else branch; pure single-site values
        # referenced only there are emitted lazily in pass 2.
        self.collecting = False
        self.line_log: list[tuple[str, bool, int]] = []
        self.else_depth = 0
        self.site_count: dict[str, int] = {}
        self.pure_sites: dict[str, int] = {}
        self.cand_line: dict[str, int] = {}
        self.cand_span: dict[str, tuple[int, int]] = {}
        self.cand_ops: dict[str, set[str]] = {}
        self.assign_pos: dict[str, list[int]] = {}
        self._cand_start = 0
        self.defer_regs: set[str] = set()
        self.deferred: dict[str, str] = {}
        self.defer_order: dict[str, int] = {}

    # -- small emission utilities -----------------------------------------

    def _line(self, text: str) -> None:
        self.lines.append("    " * self.ind + text)
        if self.collecting:
            self.line_log.append((text, self.else_depth > 0, self.ind))

    def _tmp(self) -> int:
        self.tmp_n += 1
        return self.tmp_n

    def _local(self, name: str) -> str:
        loc = self.locals_.get(name)
        if loc is None:
            loc = f"r{len(self.locals_)}"
            self.locals_[name] = loc
        return loc

    # -- pre-passes --------------------------------------------------------

    def _precheck(self) -> None:
        if self.k.instruction_count() > _MAX_TRACE_INSTRS:
            raise TraceBailout(
                "too_large",
                f"{self.k.instruction_count()} > {_MAX_TRACE_INSTRS}")

        def walk(body, depth):
            for ins in body:
                if isinstance(ins, Shuffle):
                    raise TraceBailout("shuffle", "cross-lane shuffle")
                if isinstance(ins, Exit):
                    raise TraceBailout("exit", "lane-retiring Exit")
                if isinstance(ins, AtomicOp) and ins.op == "cas":
                    raise TraceBailout("atomic_cas",
                                       "first-lane-wins CAS schedule")
                if isinstance(ins, SharedAlloc) and depth > 0:
                    raise TraceBailout(
                        "unsupported", "SharedAlloc below top level")
                if isinstance(ins, If):
                    walk(ins.then_body, depth + 1)
                    walk(ins.else_body, depth + 1)
                elif isinstance(ins, While):
                    walk(ins.cond_body, depth + 1)
                    walk(ins.body, depth + 1)

        walk(self.k.body, 0)

    def _op_uniform(self, op) -> bool:
        if isinstance(op, Imm):
            return True
        return op.name not in self.varying

    def _value_uniform(self, ins) -> bool:
        if isinstance(ins, Mov):
            return self._op_uniform(ins.src)
        if isinstance(ins, UnaryOp) or isinstance(ins, Cvt):
            return self._op_uniform(ins.src)
        if isinstance(ins, (BinOp, Cmp)):
            return self._op_uniform(ins.a) and self._op_uniform(ins.b)
        if isinstance(ins, Select):
            return (self._op_uniform(ins.pred) and self._op_uniform(ins.a)
                    and self._op_uniform(ins.b))
        if isinstance(ins, SpecialRead):
            return ins.which in ("ntid.x", "ntid.y", "ntid.z", "nctaid.x",
                                 "nctaid.y", "nctaid.z", "warpsize")
        if isinstance(ins, SharedAlloc):
            return True
        return False  # Load / AtomicOp old value

    def _analyze(self) -> None:
        counts = self.counts

        def cwalk(body, in_loop):
            for ins in body:
                d = _dst_of(ins)
                if d is not None:
                    counts[d.name] = counts.get(d.name, 0) + (
                        2 if in_loop else 1)
                    self.regdt[d.name] = d.dtype
                if isinstance(ins, If):
                    cwalk(ins.then_body, in_loop)
                    cwalk(ins.else_body, in_loop)
                elif isinstance(ins, While):
                    cwalk(ins.cond_body, True)
                    cwalk(ins.body, True)

        cwalk(self.k.body, False)
        for p in self.k.params:
            counts[p.name] = counts.get(p.name, 0) + 1
            self.regdt[p.name] = dtypes.U64 if p.is_pointer else p.dtype

        nonfull: set[str] = set()
        changed = True
        while changed:
            changed = False
            nonfull = set()

            def uwalk(body, static_full):
                nonlocal changed
                for ins in body:
                    if isinstance(ins, If):
                        cu = self._op_uniform(ins.cond)
                        uwalk(ins.then_body, static_full and cu)
                        uwalk(ins.else_body, static_full and cu)
                        continue
                    if isinstance(ins, While):
                        cu = self._op_uniform(ins.cond)
                        uwalk(ins.cond_body, static_full and cu)
                        uwalk(ins.body, static_full and cu)
                        continue
                    d = _dst_of(ins)
                    if d is None:
                        continue
                    if not static_full:
                        nonfull.add(d.name)
                    ok = self._value_uniform(ins) and (
                        static_full or counts.get(d.name, 0) <= 1)
                    if not ok and d.name not in self.varying:
                        self.varying.add(d.name)
                        changed = True

            uwalk(self.k.body, True)

        self.merge = {name for name in self.varying
                      if counts.get(name, 0) >= 2 and name in nonfull}

        def mwalk(body):
            for ins in body:
                if isinstance(ins, Load):
                    (self.global_dts if ins.space == MemSpace.GLOBAL
                     else self.shared_dts).add(ins.dst.dtype.name)
                elif isinstance(ins, (Store, AtomicOp)):
                    (self.global_dts if ins.space == MemSpace.GLOBAL
                     else self.shared_dts).add(ins.src.dtype.name)
                elif isinstance(ins, If):
                    mwalk(ins.then_body)
                    mwalk(ins.else_body)
                elif isinstance(ins, While):
                    mwalk(ins.cond_body)
                    mwalk(ins.body)

        mwalk(self.k.body)

    # -- top-level orchestration ------------------------------------------

    def compile(self) -> str:
        self._precheck()
        self._analyze()
        # Pass 1: emit normally, logging which lines land inside a
        # fast-path else branch; from the log, find pure single-site
        # values only those branches need.  Pass 2 re-emits with their
        # computation deferred into the (rarely-taken) else branches, so
        # the fast path skips dead work entirely — the counters those
        # instructions owe still accrue at their original position.
        self.collecting = True
        self._emit_all()
        self._compute_deferral()
        self.collecting = False
        self._reset_emission()
        self._emit_all()
        return "\n".join(self.lines) + "\n"

    def _emit_all(self) -> None:
        self.lines.append("def _trace(X, B, args, stats):")
        self._prelude()
        self._emit_body(self.k.body, _Ctx("full", "_L"))
        self._line("stats.instructions += _ic")
        self._line("stats.flops += _fl")
        self._line("stats.bytes_loaded += _bld")
        self._line("stats.bytes_stored += _bst")
        self._line("stats.atomic_ops += _ao")
        self._line("stats.barriers += _ba")

    def _reset_emission(self) -> None:
        self.lines = []
        self.ind = 1
        self.tmp_n = 0
        self.depth = 0
        self.shared_cursor = 0
        self.vals = {}
        self.defined = set()
        self.deferred = {}
        self.defer_order = {}

    def _compute_deferral(self) -> None:
        """Decide which pure single-site values to emit lazily.

        A register qualifies when (a) its value is produced by exactly
        one pure lanewise instruction and nothing else ever assigns it,
        (b) every operand in that line is itself single-site and never
        merge-mutated (so re-evaluating later yields the same value),
        and (c) every other line mentioning it sits inside a fast-path
        else branch or is the assignment of another deferred register.
        """
        loc2reg = {loc: name for name, loc in self.locals_.items()}
        refs: list[set] = []
        inds: list[int] = []
        for text, _, ind in self.line_log:
            names = set()
            if not text.endswith(" = None"):  # merge-reg prelude init
                for m in _LOCAL_RE.findall(text):
                    reg = loc2reg.get(f"r{m}")
                    if reg is not None:
                        names.add(reg)
            refs.append(names)
            inds.append(ind)
        cands = {
            name for name, c in self.pure_sites.items()
            if c == 1 and self.site_count.get(name) == 1
            and name in self.cand_line
        }
        # Kernel params are bound once in the prelude (no _assign site)
        # and never merge-mutated, so they are always safe operands.
        params = {p.name for p in self.k.params}
        ops_of = {n: {loc2reg[l] for l in self.cand_ops.get(n, ())
                      if l in loc2reg} - {n}
                  for n in cands}
        line_owner: dict[int, str] = {}
        for n in cands:
            s, e = self.cand_span[n]
            for li in range(s, e + 1):
                line_owner[li] = n
        apos = self.assign_pos
        # Conservative replay horizon: a deferred chain can be spliced
        # into any else branch up to the last one in the trace, so every
        # non-deferred operand must be stable over that whole window.
        horizon = max((i for i, entry in enumerate(self.line_log)
                       if entry[1]), default=-1)
        defer = set(cands)
        changed = True
        while changed:
            changed = False
            for n in list(defer):
                start, end = self.cand_span[n]
                bad = False
                for li, names in enumerate(refs):
                    if n not in names or start <= li <= end:
                        continue
                    # Dominance: the block that assigned n must still be
                    # open at the referencing line, or replaying n's
                    # assignment there could read locals a skipped
                    # prefix arm never bound — and for merge registers
                    # it also pins the reference mask to a subset of the
                    # assignment's effective mask.
                    if li < end or min(inds[end:li + 1]) < inds[end]:
                        bad = True
                        break
                    owner = line_owner.get(li)
                    if owner is not None and owner != n:
                        if owner in defer:
                            continue  # replayed together, in order
                        bad = True
                        break
                    if not self.line_log[li][1]:
                        bad = True
                        break
                if not bad:
                    # Replay re-evaluates the operands: each must
                    # provably hold the value it held at the original
                    # site for the whole replay window.
                    for op in ops_of[n]:
                        if op in params or op in defer:
                            continue
                        if any(end < p <= horizon
                               for p in apos.get(op, ())):
                            bad = True
                            break
                if bad:
                    defer.discard(n)
                    changed = True
        self.defer_regs = defer

    def _inject_deferred(self, start: int) -> None:
        """Prepend the deferred lines an else branch needs (pass 2)."""
        if not self.deferred:
            return
        needed: set[str] = set()
        queue = self.lines[start:]
        while queue:
            new = set()
            for text in queue:
                for m in _LOCAL_RE.findall(text):
                    loc = f"r{m}"
                    if loc in self.deferred and loc not in needed:
                        new.add(loc)
            needed |= new
            queue = [self.deferred[loc] for loc in new]
        if not needed:
            return
        prefix = "    " * self.ind
        inject = [prefix + self.deferred[loc]
                  for loc in sorted(needed,
                                    key=lambda loc: self.defer_order[loc])]
        self.lines[start:start] = inject

    def _prelude(self) -> None:
        self._line("_L = B.lanes")
        self._line("_nB = B.n_blocks")
        self._line("_fb = int(B.first_block)")
        self._line("_ic = 0; _fl = 0; _bld = 0; _bst = 0; _ao = 0; _ba = 0")
        for dtn in sorted(self.global_dts):
            self._line(f"_gv_{dtn} = X._gview(DT['{dtn}'])")
        if self.shared_dts:
            self._line("_sh = X._shared_arena(_nB)")
            for dtn in sorted(self.shared_dts):
                dt = dtypes.SCALAR_TYPES[dtn]
                rowe = self.shared_stride // dt.itemsize
                self._line(f"_sv_{dtn} = _sh.reshape(-1)"
                           f".view(np.{_np_name(dt)})")
                self._line(f"_s2_{dtn} = _sv_{dtn}.reshape(_nB, {rowe})")
            pairs = ", ".join(f"'{d}': _sv_{d}"
                              for d in sorted(self.shared_dts))
            self._line(f"_svs = {{{pairs}}}")
        for i, p in enumerate(self.k.params):
            dt = dtypes.U64 if p.is_pointer else p.dtype
            npn = _np_name(dt)
            loc = self._local(p.name)
            if p.name in self.varying:
                self._line(f"{loc} = np.full(_L, args[{i}], dtype=np.{npn})")
                self.vals[p.name] = _Val(loc, dt, False)
            else:
                # np.full's cast semantics, as a scalar (0-d extract):
                # uniform registers stay scalars until an assignment
                # needs lane width.
                self._line(f"{loc} = np.full((), args[{i}], "
                           f"dtype=np.{npn})[()]")
                self.vals[p.name] = _Val(loc, dt, True)
            self.defined.add(p.name)
            self.regdt[p.name] = dt
        # Merge registers start life as the interpreter's missing-env
        # entry (first assignment replaces wholesale, even under a mask).
        for name in sorted(self.merge):
            if name not in self.defined:
                self._line(f"{self._local(name)} = None")

    # -- value access ------------------------------------------------------

    def _read(self, op) -> _Val:
        if isinstance(op, Imm):
            dt = op.dtype
            const = op.value if dt.is_integer else None
            return _Val(f"np.{_np_name(dt)}({op.value!r})", dt, True,
                        const=const)
        if op.name not in self.defined:
            raise TraceBailout(
                "unsupported",
                f"read of possibly-undefined register '{op.name}'")
        return self.vals[op.name]

    def _cast(self, expr: str, src_dt, dst_dt) -> tuple[str, bool]:
        """The interpreter's asarray/astype-if-differs, as an expression.

        Unknown source dtype casts unconditionally: ``astype`` to the
        same dtype copies but never changes values, so this is exact.
        """
        if src_dt is not None and src_dt.np_dtype == dst_dt.np_dtype:
            return expr, False
        return (f"np.asarray({expr}).astype(np.{_np_name(dst_dt)})", True)

    def _slab_val(self, v: _Val, ctx: _Ctx) -> _Val:
        """Operand view covering exactly the prefix lanes of ``ctx``.

        Value instructions are lanewise, so computing them over the
        prefix sub-slab yields bit-identical values for every active
        lane; inactive lanes of a merge register keep their old values
        in both paths.
        """
        if v.uniform:
            return v
        if ctx.kind == "lin":
            e = f"{v.expr}[:{ctx.k}]"
        else:
            e = f"{v.expr}.reshape(_nB, {self.bt})[:, :{ctx.k}]"
        return _Val(e, v.dtype, False)

    def _wants_slab(self, dst: Register, ctx: _Ctx) -> bool:
        """Merge-register updates in a prefix arm can write a sub-slab
        slice instead of computing full width and fancy-indexing."""
        return (ctx.kind in ("lin", "block") and dst.name in self.merge
                and dst.name in self.varying)

    def _assign(self, dst: Register, val: _Val, ctx: _Ctx,
                copy: bool = False, aff=None, prefix=None,
                slab: str | None = None, pure: bool = False) -> None:
        """Emit ``_ExecState.assign`` for one computed value."""
        name, dt = dst.name, dst.dtype
        loc = self._local(name)
        if self.collecting:
            self.site_count[name] = self.site_count.get(name, 0) + 1
            self.assign_pos.setdefault(name, []).append(len(self.line_log))
            if pure and name in self.varying:
                self.pure_sites[name] = self.pure_sites.get(name, 0) + 1
                self._cand_start = len(self.line_log)
        expr, fresh = self._cast(val.expr, val.dtype, dt)
        if slab is not None:
            slab, _ = self._cast(slab, val.dtype, dt)
        const = val.const
        if const is not None:
            lo, hi = (_int_bounds(dt) if dt.is_integer else (0, -1))
            if not (dt.is_integer and lo <= const <= hi):
                const = None
        if fresh:
            aff = prefix = None  # meta was computed for the pre-cast dtype
            if val.dtype is not None:
                const = None
        if name not in self.varying:
            # Uniform register: a scalar local; every assignment site is
            # statically full or the single site, so a rebind is the
            # interpreter's whole-array replace.
            self._line(f"{loc} = {expr}")
        elif val.uniform:
            # Scalar value into a varying register: materialize np.full
            # exactly where the interpreter does (assign's ndim-0 path).
            self._varying_store(name, loc, f"np.full(_L, {expr})", ctx,
                                fresh=True, slab=expr)
        else:
            if copy and not fresh:
                expr = f"({expr}).copy()"
                fresh = True
            self._varying_store(name, loc, expr, ctx, fresh=fresh,
                                slab=slab)
        if self.collecting and pure and name in self.varying:
            self.cand_line[name] = len(self.line_log) - 1
            self.cand_span[name] = (self._cand_start,
                                    len(self.line_log) - 1)
            self.cand_ops[name] = {f"r{m}"
                                   for m in _LOCAL_RE.findall(expr)}
        self.vals[name] = _Val(loc, dt, name not in self.varying,
                               const=const, aff=aff, prefix=prefix)
        self.defined.add(name)

    def _varying_store(self, name: str, loc: str, expr: str, ctx: _Ctx,
                       fresh: bool, slab: str | None = None) -> None:
        if name in self.defer_regs:
            # Deferred: replayed as a plain full-width rebuild inside
            # the else branches that consume it (for merge registers
            # the replay matches the interpreter on every lane the
            # consumer's mask can select — dominance pins that mask to
            # a subset of this site's effective mask).
            self.deferred[loc] = f"{loc} = {expr}"
            self.defer_order[loc] = len(self.defer_order)
            return
        if name not in self.merge or ctx.kind == "full":
            self._line(f"{loc} = {expr}")
            return
        # Merge register at a masked site: first (runtime) assignment
        # stores the full computed array (interpreter assign with no
        # prior env entry); later ones update only the active lanes.
        if slab is not None and ctx.kind in ("lin", "block"):
            tgt = (f"{loc}[:{ctx.k}]" if ctx.kind == "lin"
                   else f"{loc}.reshape(_nB, {self.bt})[:, :{ctx.k}]")
            self._line(f"if {loc} is None:")
            self._line(f"    {loc} = {expr}")
            self._line("else:")
            self._line(f"    {tgt} = {slab}")
            return
        t = self._tmp()
        self._line(f"_t{t} = {expr}")
        self._line(f"if {loc} is None:")
        self._line(f"    {loc} = _t{t}")
        self._line("else:")
        self._line(f"    np.copyto({loc}, _t{t}, where={ctx.arr})")

    # -- instruction emission ---------------------------------------------

    def _emit_body(self, body, ctx: _Ctx) -> None:
        before = len(self.lines)
        for ins in body:
            self._emit(ins, ctx)
        if len(self.lines) == before:
            self._line("pass")

    def _emit(self, ins, ctx: _Ctx) -> None:
        self._line(f"_ic += {ctx.n}")
        if isinstance(ins, Mov):
            src = self._read(ins.src)
            slab = (self._slab_val(src, ctx).expr
                    if self._wants_slab(ins.dst, ctx) and not src.uniform
                    else None)
            self._assign(ins.dst, src, ctx,
                         copy=isinstance(ins.src, Register),
                         aff=src.aff, prefix=src.prefix, slab=slab,
                         pure=True)
        elif isinstance(ins, BinOp):
            self._emit_binop(ins, ctx)
        elif isinstance(ins, UnaryOp):
            self._emit_unary(ins, ctx)
        elif isinstance(ins, Cmp):
            self._emit_cmp(ins, ctx)
        elif isinstance(ins, Select):
            p, a, b = (self._read(ins.pred), self._read(ins.a),
                       self._read(ins.b))
            sd = (a.dtype if (a.dtype is not None and b.dtype is not None
                              and a.dtype.np_dtype == b.dtype.np_dtype)
                  else None)
            val = _Val(f"np.where({p.expr}, {a.expr}, {b.expr})", sd,
                       p.uniform and a.uniform and b.uniform)
            slab = None
            if self._wants_slab(ins.dst, ctx) and not val.uniform:
                ps, as_, bs = (self._slab_val(p, ctx), self._slab_val(a, ctx),
                               self._slab_val(b, ctx))
                slab = f"np.where({ps.expr}, {as_.expr}, {bs.expr})"
            self._assign(ins.dst, val, ctx, slab=slab, pure=True)
        elif isinstance(ins, Cvt):
            self._emit_cvt(ins, ctx)
        elif isinstance(ins, SpecialRead):
            self._emit_special(ins, ctx)
        elif isinstance(ins, Load):
            self._emit_load(ins, ctx)
        elif isinstance(ins, Store):
            self._emit_store(ins, ctx)
        elif isinstance(ins, SharedAlloc):
            self._emit_shared_alloc(ins, ctx)
        elif isinstance(ins, Barrier):
            if ctx.kind == "full":
                self._line("_ba += _nB")
            else:
                self._line(f"_ba += _barrier(X, B, {ctx.arr})")
        elif isinstance(ins, AtomicOp):
            self._emit_atomic(ins, ctx)
        elif isinstance(ins, If):
            self._emit_if(ins, ctx)
        elif isinstance(ins, While):
            self._emit_while(ins, ctx)
        else:
            raise TraceBailout("unsupported",
                               f"instruction {type(ins).__name__}")

    def _emit_binop(self, ins: BinOp, ctx: _Ctx) -> None:
        a, b = self._read(ins.a), self._read(ins.b)
        dt = ins.dst.dtype
        expr, vdt = self._binop_expr(ins.op, a, b, dt)
        aff = self._binop_meta(ins.op, a, b, vdt)
        const = self._binop_const(ins.op, a, b, vdt)
        val = _Val(expr, vdt, a.uniform and b.uniform, const=const)
        slab = None
        if self._wants_slab(ins.dst, ctx) and not val.uniform:
            slab, _ = self._binop_expr(ins.op, self._slab_val(a, ctx),
                                       self._slab_val(b, ctx), dt)
        self._assign(ins.dst, val, ctx, aff=aff, slab=slab, pure=True)
        if dt.is_float:
            self._line(f"_fl += {ctx.n}")

    def _binop_expr(self, op: str, a: _Val, b: _Val, result_dt):
        same = (a.dtype is not None and b.dtype is not None
                and a.dtype.np_dtype == b.dtype.np_dtype)
        sd = a.dtype if same else None
        if op in ("add", "sub", "mul"):
            fn = {"add": "np.add", "sub": "np.subtract",
                  "mul": "np.multiply"}[op]
            return f"{fn}({a.expr}, {b.expr})", sd
        if op == "div":
            if result_dt.is_float:
                return (f"np.divide({a.expr}, {b.expr})",
                        sd if (sd and sd.is_float) else None)
            return f"_cdiv({a.expr}, {b.expr})", sd
        if op == "rem":
            if result_dt.is_float:
                return (f"np.mod({a.expr}, {b.expr})",
                        sd if (sd and sd.is_float) else None)
            return f"_crem({a.expr}, {b.expr})", sd
        if op == "min":
            return f"np.minimum({a.expr}, {b.expr})", sd
        if op == "max":
            return f"np.maximum({a.expr}, {b.expr})", sd
        if op == "pow":
            return f"np.power({a.expr}, {b.expr})", sd
        if op in ("and", "or", "xor"):
            if result_dt.is_pred:
                return (f"np.logical_{op.replace('xor', 'xor')}"
                        f"({a.expr}, {b.expr})", dtypes.PRED)
            fn = {"and": "np.bitwise_and", "or": "np.bitwise_or",
                  "xor": "np.bitwise_xor"}[op]
            return f"{fn}({a.expr}, {b.expr})", sd
        if op == "shl":
            return f"np.left_shift({a.expr}, {b.expr})", sd
        if op == "shr":
            return f"np.right_shift({a.expr}, {b.expr})", sd
        raise TraceBailout("unsupported", f"binary op '{op}'")

    def _binop_const(self, op: str, a: _Val, b: _Val, vdt):
        if (a.const is None or b.const is None or vdt is None
                or not vdt.is_integer):
            return None
        fn = {"add": lambda x, y: x + y, "sub": lambda x, y: x - y,
              "mul": lambda x, y: x * y}.get(op)
        if fn is None:
            return None
        c = fn(a.const, b.const)
        lo, hi = _int_bounds(vdt)
        return c if lo <= c <= hi else None

    def _emit_unary(self, ins: UnaryOp, ctx: _Ctx) -> None:
        src = self._read(ins.src)
        dt = ins.dst.dtype

        def build(s):
            if ins.op == "rsqrt":
                return f"(1.0 / np.sqrt({s}))"
            return f"{_UNARY_FNS[ins.op]}({s})"

        if ins.op == "rsqrt":
            vdt = src.dtype if (src.dtype and src.dtype.is_float) else None
        elif ins.op in _UNARY_FNS:
            if ins.op in _UNARY_SAME_DT:
                vdt = src.dtype
            elif ins.op == "not":
                vdt = dtypes.PRED
            else:
                vdt = src.dtype if (src.dtype
                                    and src.dtype.is_float) else None
        else:
            raise TraceBailout("unsupported", f"unary op '{ins.op}'")
        expr = build(src.expr)
        slab = (build(self._slab_val(src, ctx).expr)
                if self._wants_slab(ins.dst, ctx) and not src.uniform
                else None)
        self._assign(ins.dst, _Val(expr, vdt, src.uniform), ctx, slab=slab,
                     pure=True)
        if dt.is_float:
            self._line(f"_fl += {ctx.n}")

    def _emit_cmp(self, ins: Cmp, ctx: _Ctx) -> None:
        a, b = self._read(ins.a), self._read(ins.b)
        expr = f"{_CMP_FNS[ins.op]}({a.expr}, {b.expr})"
        prefix = self._cmp_prefix(ins.op, a, b)
        uni = a.uniform and b.uniform
        slab = None
        if self._wants_slab(ins.dst, ctx) and not uni:
            slab = (f"{_CMP_FNS[ins.op]}({self._slab_val(a, ctx).expr}, "
                    f"{self._slab_val(b, ctx).expr})")
        self._assign(ins.dst, _Val(expr, dtypes.PRED, uni), ctx,
                     prefix=prefix, slab=slab, pure=True)

    def _emit_cvt(self, ins: Cvt, ctx: _Ctx) -> None:
        src = self._read(ins.src)
        dt = ins.dst.dtype
        expr = f"np.asarray({src.expr}).astype(np.{_np_name(dt)})"
        aff = self._cvt_meta(src, dt)
        const = None
        if (src.const is not None and dt.is_integer):
            lo, hi = _int_bounds(dt)
            if lo <= src.const <= hi:
                const = src.const
        val = _Val(expr, dt, src.uniform, const=const)
        slab = None
        if self._wants_slab(ins.dst, ctx) and not src.uniform:
            slab = (f"np.asarray({self._slab_val(src, ctx).expr})"
                    f".astype(np.{_np_name(dt)})")
        self._assign(ins.dst, val, ctx, aff=aff, slab=slab, pure=True)

    def _emit_special(self, ins: SpecialRead, ctx: _Ctx) -> None:
        which = ins.which
        dt = dtypes.U32
        aff = None
        if which == "tid.x":
            if self.block[1] == 1 and self.block[2] == 1:
                aff = _Aff(None, 0, 0, 0, 1, 0, 0, self.bt - 1)
            val = _Val("B.tid[0]", dt, False, aff=aff)
        elif which in ("tid.y", "tid.z"):
            val = _Val(f"B.tid[{'xyz'.index(which[-1])}]", dt, False)
        elif which == "ctaid.x":
            if self.grid[1] == 1 and self.grid[2] == 1 \
                    and self.total_blocks - 1 <= _int_bounds(dt)[1]:
                aff = _Aff(None, 0, 0, 1, 0, 1, 0, self.total_blocks - 1)
            val = _Val("B.ctaid[0]", dt, False, aff=aff)
        elif which in ("ctaid.y", "ctaid.z"):
            val = _Val(f"B.ctaid[{'xyz'.index(which[-1])}]", dt, False)
        elif which == "laneid":
            val = _Val(f"(B.block_linear % {self.warp})"
                       f".astype(np.uint32)", dt, False)
        elif which == "warpsize":
            val = _Val(f"np.uint32({self.warp})", dt, True, const=self.warp)
        elif which in self.dims:
            c = self.dims[which]
            val = _Val(f"np.uint32({c})", dt, True, const=c)
        else:
            raise TraceBailout("unsupported", f"special '{which}'")
        slab = None
        if (self._wants_slab(ins.dst, ctx) and not val.uniform
                and which != "laneid"):
            slab = self._slab_val(val, ctx).expr
        self._assign(ins.dst, val, ctx, copy=not val.uniform,
                     aff=val.aff, slab=slab, pure=True)

    def _emit_shared_alloc(self, ins: SharedAlloc, ctx: _Ctx) -> None:
        if ctx.kind != "full" or self.depth > 0:
            raise TraceBailout("unsupported",
                               "SharedAlloc below top level")
        align = ins.dtype.itemsize
        self.shared_cursor = -(-self.shared_cursor // align) * align
        base = self.shared_cursor
        self.shared_cursor += ins.dtype.itemsize * ins.count
        val = _Val(f"np.uint64({base})", dtypes.U64, True, const=base)
        self._assign(ins.dst, val, ctx,
                     aff=_Aff(None, 0, base, 0, 0, 0, base, base))

    def _strip(self, names) -> None:
        """Reset compile-time knowledge after runtime-conditional writes."""
        for name in names:
            v = self.vals.get(name)
            if v is not None:
                self.vals[name] = _Val(self._local(name),
                                       self.regdt.get(name, v.dtype),
                                       name not in self.varying)

    # -- control flow ------------------------------------------------------

    def _emit_if(self, ins: If, ctx: _Ctx) -> None:
        cv = self._read(ins.cond)
        assigned = (_assigned_names(ins.then_body)
                    | _assigned_names(ins.else_body))
        pre_vals = dict(self.vals)
        pre_def = set(self.defined)
        self.depth += 1
        if cv.uniform:
            self._line(f"if bool({cv.expr}):")
            self.ind += 1
            self._emit_body(ins.then_body, ctx)
            self.ind -= 1
            then_def = set(self.defined)
            self.vals = dict(pre_vals)
            self.defined = set(pre_def)
            if ins.else_body:
                self._line("else:")
                self.ind += 1
                self._emit_body(ins.else_body, ctx)
                self.ind -= 1
                else_def = set(self.defined)
            else:
                else_def = set(pre_def)
        else:
            c = cv.expr
            t = self._tmp()
            then_ctx = None
            if ctx.kind == "full" and cv.prefix is not None:
                pf = cv.prefix
                if pf.kind == "lin":
                    self._line(f"_k{t} = min(max({pf.thr}, 0), _L)")
                    then_ctx = _Ctx("lin", f"_k{t}", arr=c, k=f"_k{t}")
                else:
                    self._line(f"_k{t} = min(max({pf.thr}, 0), {self.bt})")
                    then_ctx = _Ctx("block", f"(_k{t} * _nB)", arr=c,
                                    k=f"_k{t}")
                gate = f"_k{t} > 0"
            if then_ctx is None:
                if ctx.kind == "full":
                    self._line(f"_n{t} = int({c}.sum())")
                    then_ctx = _Ctx("gen", f"_n{t}", arr=c)
                else:
                    self._line(f"_m{t} = {ctx.arr} & {c}")
                    self._line(f"_n{t} = int(_m{t}.sum())")
                    then_ctx = _Ctx("gen", f"_n{t}", arr=f"_m{t}")
                gate = f"_n{t} > 0"
            then_n = then_ctx.n
            self._line(f"if {gate}:")
            self.ind += 1
            self._emit_body(ins.then_body, then_ctx)
            self.ind -= 1
            then_def = set(self.defined)
            self.vals = dict(pre_vals)
            self.defined = set(pre_def)
            if ins.else_body:
                e = self._tmp()
                if ctx.kind == "full":
                    self._line(f"_m{e} = ~{c}")
                    en = f"(_L - {then_n})"
                else:
                    self._line(f"_m{e} = {ctx.arr} & ~{c}")
                    en = f"({ctx.n} - {then_n})"
                self._line(f"if {en} > 0:")
                self.ind += 1
                self._emit_body(ins.else_body, _Ctx("gen", en, arr=f"_m{e}"))
                self.ind -= 1
                else_def = set(self.defined)
            else:
                else_def = set(pre_def)
        self.depth -= 1
        self.vals = dict(pre_vals)
        self.defined = pre_def | (then_def & else_def)
        self._strip(assigned)

    def _emit_while(self, ins: While, ctx: _Ctx) -> None:
        assigned = (_assigned_names(ins.cond_body)
                    | _assigned_names(ins.body))
        self._strip(assigned)  # loop-carried values are runtime-only
        t = self._tmp()
        trips_raise = (f"raise IRError(\"kernel '{self.k.name}': "
                       f"loop exceeded {_MAX_LOOP_TRIPS} iterations "
                       f"(runaway loop?)\")")
        self._line(f"_tr{t} = 0")
        self.depth += 1
        if self._op_uniform(ins.cond):
            self._line("while True:")
            self.ind += 1
            self._emit_body(ins.cond_body, ctx)
            cv = self._read(ins.cond)
            self._line(f"if not bool({cv.expr}):")
            self._line("    break")
            def_after_cond = set(self.defined)
            self._emit_body(ins.body, ctx)
            self._line(f"_tr{t} += 1")
            self._line(f"if _tr{t} > {_MAX_LOOP_TRIPS}:")
            self._line(f"    {trips_raise}")
            self.ind -= 1
        else:
            if ctx.kind == "full":
                self._line(f"_lv{t} = np.ones(_L, dtype=bool)")
            else:
                self._line(f"_lv{t} = {ctx.arr}.copy()")
            self._line(f"_ln{t} = {ctx.n}")
            self._line("while True:")
            self.ind += 1
            self._line(f"if _ln{t} == 0:")
            self._line("    break")
            lctx = _Ctx("gen", f"_ln{t}", arr=f"_lv{t}")
            self._emit_body(ins.cond_body, lctx)
            cv = self._read(ins.cond)
            self._line(f"_lv{t} &= {cv.expr}")
            self._line(f"_ln{t} = int(_lv{t}.sum())")
            self._line(f"if _ln{t} == 0:")
            self._line("    break")
            def_after_cond = set(self.defined)
            self._emit_body(ins.body, lctx)
            self._line(f"_tr{t} += 1")
            self._line(f"if _tr{t} > {_MAX_LOOP_TRIPS}:")
            self._line(f"    {trips_raise}")
            self.ind -= 1
        self.depth -= 1
        self.defined = def_after_cond
        self._strip(assigned)

    # -- affine/prefix metadata -------------------------------------------

    def _pure_const(self, v: _Val):
        if v.const is None:
            return None
        a = v.aff
        if a is not None and (a.sym is not None or a.dfb or a.cbl or a.crow):
            return None
        return v.const

    def _aff_of(self, v: _Val):
        """An _Aff for this value, binding a runtime symbol if needed.

        ``_syN = int(expr)`` lines are scope-safe: metadata referencing
        them is stripped at every branch-arm/loop exit, so a symbol is
        never read outside the block that bound it.
        """
        if v.aff is not None:
            return v.aff
        if v.const is not None:
            c = v.const
            return _Aff(None, 0, c, 0, 0, 0, c, c)
        if v.uniform and v.dtype is not None and v.dtype.is_integer:
            s = self._tmp()
            self._line(f"_sy{s} = int({v.expr})")
            return _Aff(f"_sy{s}", 1, 0, 0, 0, 0, 0, 0)
        return None

    def _bounded(self, aff: _Aff, dt):
        """Keep the model only if the value provably fits ``dt``.

        Sym-free models must fit statically (and stay guard-free); models
        with a symbol get runtime no-wraparound guards, capped at 8.
        """
        dmin, dmax = _int_bounds(dt)
        guards = list(dict.fromkeys(aff.guards))
        if aff.sym is None:
            if aff.lo < dmin or aff.hi > dmax or guards:
                return None
            return _Aff(None, aff.sc, aff.d0, aff.dfb, aff.cbl, aff.crow,
                        aff.lo, aff.hi)
        guards += [f"({dmin} <= {aff.sc} * {aff.sym} + {aff.lo})",
                   f"({aff.sc} * {aff.sym} + {aff.hi} <= {dmax})"]
        guards = list(dict.fromkeys(guards))
        if len(guards) > 8:
            return None
        return _Aff(aff.sym, aff.sc, aff.d0, aff.dfb, aff.cbl, aff.crow,
                    aff.lo, aff.hi, guards)

    def _binop_meta(self, op: str, a: _Val, b: _Val, vdt):
        if vdt is None or not vdt.is_integer or op not in ("add", "sub",
                                                           "mul"):
            return None
        if op == "mul":
            fa, fb = self._pure_const(a), self._pure_const(b)
            if (fa is None) == (fb is None):
                return None  # need exactly one pure-const factor
            base, f = (b, fa) if fa is not None else (a, fb)
            A = self._aff_of(base)
            if A is None:
                return None
            lo, hi = ((A.lo * f, A.hi * f) if f >= 0
                      else (A.hi * f, A.lo * f))
            return self._bounded(
                _Aff(A.sym, A.sc * f, A.d0 * f, A.dfb * f, A.cbl * f,
                     A.crow * f, lo, hi, A.guards), vdt)
        A = self._aff_of(a)
        if A is None:
            return None
        B = self._aff_of(b)
        if B is None:
            return None
        if A.sym is not None and B.sym is not None:
            return None
        sym = A.sym or B.sym
        sa = A.sc if A.sym else 0
        sb = B.sc if B.sym else 0
        if op == "add":
            aff = _Aff(sym, sa + sb, A.d0 + B.d0, A.dfb + B.dfb,
                       A.cbl + B.cbl, A.crow + B.crow, A.lo + B.lo,
                       A.hi + B.hi, A.guards + B.guards)
        else:
            aff = _Aff(sym, sa - sb, A.d0 - B.d0, A.dfb - B.dfb,
                       A.cbl - B.cbl, A.crow - B.crow, A.lo - B.hi,
                       A.hi - B.lo, A.guards + B.guards)
        return self._bounded(aff, vdt)

    def _cvt_meta(self, src: _Val, dst_dt):
        if (src.aff is None or not dst_dt.is_integer or src.dtype is None
                or not src.dtype.is_integer):
            return None
        return self._bounded(src.aff, dst_dt)

    def _cmp_prefix(self, op: str, a: _Val, b: _Val):
        if op not in ("lt", "le", "gt", "ge"):
            return None
        if (a.dtype is None or b.dtype is None
                or a.dtype.np_dtype != b.dtype.np_dtype
                or not a.dtype.is_integer):
            return None
        # Normalize to AFF < U, which holds on a prefix of lanes.
        if a.aff is not None and not a.uniform and b.uniform:
            A, u = a.aff, b
            if op == "lt":
                off = 0
            elif op == "le":
                off = 1
            else:
                return None  # aff > u is a suffix, not a prefix
        elif b.aff is not None and not b.uniform and a.uniform:
            A, u = b.aff, a
            if op == "gt":
                off = 0  # u > aff  <=>  aff < u
            elif op == "ge":
                off = 1  # u >= aff <=>  aff < u + 1
            else:
                return None
        else:
            return None
        if A.sym is not None or A.guards or A.cbl <= 0:
            return None
        if A.crow == A.cbl * self.bt:
            kind = "lin"
        elif A.crow == 0:
            kind = "block"
        else:
            return None
        base = f"({A.d0} + {A.dfb} * _fb)"
        thr = f"-(({base} - (int({u.expr}) + {off})) // {A.cbl})"
        return _Prefix(kind, thr)

    # -- memory ------------------------------------------------------------

    def _contig_info(self, av: _Val, isz: int, space, ctx: _Ctx):
        """(base_expr, guards) when active addresses form exact runs."""
        A = av.aff
        if A is None:
            return None
        if space == MemSpace.GLOBAL:
            if not (A.cbl == isz and A.crow == isz * self.bt
                    and ctx.kind in ("full", "lin")):
                return None
        else:
            if not (A.cbl == isz and A.crow == 0
                    and ctx.kind in ("full", "block")):
                return None
        if A.sym is None:
            base = f"({A.d0} + {A.dfb} * _fb)"
        else:
            base = f"({A.sc} * {A.sym} + {A.d0} + {A.dfb} * _fb)"
        return base, list(A.guards)

    def _addr_expr(self, av: _Val, t: int) -> str:
        if av.uniform:
            self._line(f"_ad{t} = np.full(_L, {av.expr}, dtype=np.uint64)")
            return f"_ad{t}"
        return av.expr

    def _mem_conds(self, t: int, isz: int, space, ctx: _Ctx, guards):
        conds = list(guards)
        if space == MemSpace.GLOBAL:
            k = "_L" if ctx.kind == "full" else ctx.k
            conds += [f"_b{t} % {isz} == 0",
                      f"_span_ok(X, _b{t}, {k}, {isz})"]
        else:
            k = str(self.bt) if ctx.kind == "full" else ctx.k
            conds += [f"0 <= _b{t}", f"_b{t} % {isz} == 0",
                      f"_b{t} + {k} * {isz} <= {self.shared_bytes}"]
        return conds, k

    def _emit_load(self, ins: Load, ctx: _Ctx) -> None:
        dt = ins.dst.dtype
        isz, dtn, npn = dt.itemsize, dt.name, _np_name(dt)
        av = self._read(ins.addr)
        name = ins.dst.name
        loc = self._local(name)
        fast = self._contig_info(av, isz, ins.space, ctx)
        if fast is not None and name in self.varying:
            base, guards = fast
            t = self._tmp()
            self._line(f"_b{t} = {base}")
            conds, k = self._mem_conds(t, isz, ins.space, ctx, guards)
            self._line(f"if {' and '.join(conds)}:")
            self.ind += 1
            if ins.space == MemSpace.GLOBAL:
                self._line(f"_j{t} = _b{t} // {isz}")
                sl = f"_gv_{dtn}[_j{t}:_j{t} + {k}]"
                if ctx.kind == "full":
                    self._line(f"{loc} = {sl}.copy()")
                else:
                    self._fast_prefix_load(name, loc, sl, k,
                                           f"_gv_{dtn}[0]", False, npn)
            else:
                self._line(f"_c{t} = _b{t} // {isz}")
                sl = f"_s2_{dtn}[:, _c{t}:_c{t} + {k}]"
                if ctx.kind == "full":
                    self._line(f"{loc} = {sl}.flatten()")
                else:
                    self._fast_prefix_load(name, loc, sl, k,
                                           f"_sv_{dtn}[0]", True, npn)
            self.ind -= 1
            self._line("else:")
            self.ind += 1
            self.else_depth += 1
            start = len(self.lines)
            self._generic_load(ins, ctx, av, dt)
            self._inject_deferred(start)
            self.else_depth -= 1
            self.ind -= 1
            self.vals[name] = _Val(loc, dt, False)
            self.defined.add(name)
        else:
            self._generic_load(ins, ctx, av, dt)
        self._line(f"_bld += {ctx.n} * {isz}")

    def _fast_prefix_load(self, name: str, loc: str, sl: str, k: str,
                          tail: str, per_block: bool, npn: str) -> None:
        t = self._tmp()
        if per_block:
            build = [f"_a{t} = np.empty(_L, dtype=np.{npn})",
                     f"_a2{t} = _a{t}.reshape(_nB, {self.bt})",
                     f"_a2{t}[:, :{k}] = {sl}",
                     f"_a2{t}[:, {k}:] = {tail}"]
            merge_line = f"{loc}.reshape(_nB, {self.bt})[:, :{k}] = {sl}"
        else:
            build = [f"_a{t} = np.empty(_L, dtype=np.{npn})",
                     f"_a{t}[:{k}] = {sl}",
                     f"_a{t}[{k}:] = {tail}"]
            merge_line = f"{loc}[:{k}] = {sl}"
        if name in self.merge:
            self._line(f"if {loc} is None:")
            self.ind += 1
            for ln in build:
                self._line(ln)
            self._line(f"{loc} = _a{t}")
            self.ind -= 1
            self._line("else:")
            self.ind += 1
            self._line(merge_line)
            self.ind -= 1
        else:
            # non-merge + non-full site => single assignment => the
            # interpreter's missing-env whole-array replace, inactive
            # lanes included (they read the parked element 0).
            for ln in build:
                self._line(ln)
            self._line(f"{loc} = _a{t}")

    def _generic_load(self, ins: Load, ctx: _Ctx, av: _Val, dt) -> None:
        t = self._tmp()
        addr = self._addr_expr(av, t)
        eff = "None" if ctx.kind == "full" else ctx.arr
        is_g = "True" if ins.space == MemSpace.GLOBAL else "False"
        svs = "None" if ins.space == MemSpace.GLOBAL else "_svs"
        self._line(f"_vw{t}, _ix{t} = _resolve(X, B, {svs}, {addr}, "
                   f"{eff}, DT['{dt.name}'], {is_g}, False)")
        self._assign(ins.dst, _Val(f"_vw{t}[_ix{t}]", dt, False), ctx)

    def _emit_store(self, ins: Store, ctx: _Ctx) -> None:
        sv = self._read(ins.src)
        dt = ins.src.dtype
        isz, dtn = dt.itemsize, dt.name
        av = self._read(ins.addr)
        fast = self._contig_info(av, isz, ins.space, ctx)
        if fast is not None:
            base, guards = fast
            t = self._tmp()
            self._line(f"_b{t} = {base}")
            conds, k = self._mem_conds(t, isz, ins.space, ctx, guards)
            self._line(f"if {' and '.join(conds)}:")
            self.ind += 1
            if ins.space == MemSpace.GLOBAL:
                self._line(f"_j{t} = _b{t} // {isz}")
                dst = f"_gv_{dtn}[_j{t}:_j{t} + {k}]"
                if sv.uniform:
                    self._line(f"{dst} = {sv.expr}")
                elif ctx.kind == "full":
                    self._line(f"{dst} = {sv.expr}")
                else:
                    self._line(f"{dst} = {sv.expr}[:{k}]")
            else:
                self._line(f"_c{t} = _b{t} // {isz}")
                dst = f"_s2_{dtn}[:, _c{t}:_c{t} + {k}]"
                if sv.uniform:
                    self._line(f"{dst} = {sv.expr}")
                else:
                    self._line(f"{dst} = np.ascontiguousarray({sv.expr})"
                               f".reshape(_nB, {self.bt})[:, :{k}]")
            self.ind -= 1
            self._line("else:")
            self.ind += 1
            self.else_depth += 1
            start = len(self.lines)
            self._generic_store(ins, ctx, av, sv, dt)
            self._inject_deferred(start)
            self.else_depth -= 1
            self.ind -= 1
        else:
            self._generic_store(ins, ctx, av, sv, dt)
        self._line(f"_bst += {ctx.n} * {isz}")

    def _generic_store(self, ins: Store, ctx: _Ctx, av: _Val, sv: _Val,
                       dt) -> None:
        t = self._tmp()
        addr = self._addr_expr(av, t)
        eff = "None" if ctx.kind == "full" else ctx.arr
        is_g = "True" if ins.space == MemSpace.GLOBAL else "False"
        svs = "None" if ins.space == MemSpace.GLOBAL else "_svs"
        self._line(f"_vw{t}, _ix{t} = _resolve(X, B, {svs}, {addr}, "
                   f"{eff}, DT['{dt.name}'], {is_g}, True)")
        tgt = (f"_vw{t}[_ix{t}]" if ctx.kind == "full"
               else f"_vw{t}[_ix{t}[{ctx.arr}]]")
        if sv.uniform or ctx.kind == "full":
            self._line(f"{tgt} = {sv.expr}")
        else:
            self._line(f"{tgt} = {sv.expr}[{ctx.arr}]")

    def _emit_atomic(self, ins: AtomicOp, ctx: _Ctx) -> None:
        sv = self._read(ins.src)
        dt = ins.src.dtype
        npn = _np_name(dt)
        t = self._tmp()
        av = self._read(ins.addr)
        addr = self._addr_expr(av, t)
        eff = "None" if ctx.kind == "full" else ctx.arr
        is_g = "True" if ins.space == MemSpace.GLOBAL else "False"
        svs = "None" if ins.space == MemSpace.GLOBAL else "_svs"
        self._line(f"_vw{t}, _ix{t} = _resolve(X, B, {svs}, {addr}, "
                   f"{eff}, DT['{dt.name}'], {is_g}, True)")
        if sv.uniform:
            self._line(f"_sf{t} = np.full(_L, {sv.expr}, dtype=np.{npn})")
            src = f"_sf{t}"
        else:
            src = sv.expr
        want = ins.dst is not None
        self._line(f"_o{t} = _atomic(_vw{t}, _ix{t}, {eff}, {src}, "
                   f"'{ins.op}', {want}, _L, np.{npn})")
        if want:
            self._assign(ins.dst, _Val(f"_o{t}", dt, False), ctx)
        self._line(f"_ao += {ctx.n}")
