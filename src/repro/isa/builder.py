"""Convenience builder for constructing kernel IR.

All frontends (the kernel DSL, the model runtimes, the translators' code
generators) build IR through this class rather than instantiating
instruction dataclasses directly.  The builder:

* allocates fresh virtual registers,
* auto-promotes mixed-type arithmetic operands (inserting ``Cvt``),
* coerces Python numbers to immediates of the right type,
* provides structured-control-flow context managers, and
* offers composite helpers (``global_id``, ``elem_addr``, ``for_range``)
  that every programming model needs.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Union

from repro.errors import IRError
from repro.isa import dtypes
from repro.isa.dtypes import DType
from repro.isa.instructions import (
    ATOMIC_OPS,
    BINARY_OPS,
    CMP_OPS,
    SHUFFLE_MODES,
    UNARY_OPS,
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Instruction,
    Load,
    MemSpace,
    Mov,
    Operand,
    Param,
    Register,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    SpecialReg,
    Store,
    UnaryOp,
    While,
)
from repro.isa.module import KernelIR

Number = Union[int, float, bool]
OperandLike = Union[Register, Imm, Number]


class IRBuilder:
    """Builds one :class:`~repro.isa.module.KernelIR`."""

    def __init__(self, name: str):
        self.name = name
        self.params: list[Param] = []
        self._body: list[Instruction] = []
        self._stack: list[list[Instruction]] = [self._body]
        self._counter = 0
        self._features: set[str] = set()
        self._names: set[str] = set()

    # -- parameters and registers ------------------------------------------

    def param(self, name: str, dtype: DType, pointer: bool = False) -> Register:
        """Declare a kernel parameter and return its register."""
        if name in self._names:
            raise IRError(f"duplicate parameter name '{name}'")
        self._names.add(name)
        p = Param(name, dtype, is_pointer=pointer)
        self.params.append(p)
        return p.reg

    def fresh(self, dtype: DType, hint: str = "t") -> Register:
        """Allocate a fresh virtual register."""
        self._counter += 1
        return Register(f"{hint}{self._counter}", dtype)

    def named(self, name: str, dtype: DType) -> Register:
        """A stable, user-named register (for DSL variables)."""
        return Register(name, dtype)

    def feature(self, tag: str) -> None:
        """Attach a feature tag to the kernel (consumed by toolchains)."""
        self._features.add(tag)

    # -- emission ------------------------------------------------------------

    @property
    def _cur(self) -> list[Instruction]:
        return self._stack[-1]

    def emit(self, instr: Instruction) -> Instruction:
        self._cur.append(instr)
        return instr

    def operand(self, value: OperandLike, dtype: DType | None = None) -> Operand:
        """Coerce a Python number (or pass through an operand)."""
        if isinstance(value, (Register, Imm)):
            return value
        if dtype is None:
            if isinstance(value, bool):
                dtype = dtypes.PRED
            elif isinstance(value, int):
                dtype = dtypes.I64
            else:
                dtype = dtypes.F64
        return Imm(value, dtype)

    # -- data movement ---------------------------------------------------------

    def mov(self, dst: Register, src: OperandLike) -> Register:
        src_op = self.operand(src, dst.dtype)
        if src_op.dtype != dst.dtype:
            src_op = self.cvt(src_op, dst.dtype)
        self.emit(Mov(dst, src_op))
        return dst

    def cvt(self, src: OperandLike, dtype: DType) -> Operand:
        """Convert ``src`` to ``dtype`` (no-op when already there)."""
        src_op = self.operand(src)
        if src_op.dtype == dtype:
            return src_op
        if isinstance(src_op, Imm) and not (src_op.dtype.is_pred or dtype.is_pred):
            # Fold immediate conversions at build time.
            return Imm(src_op.value, dtype)
        dst = self.fresh(dtype, "cv")
        self.emit(Cvt(dst, src_op))
        return dst

    # -- arithmetic ---------------------------------------------------------

    def _coerce_pair(self, a: OperandLike, b: OperandLike) -> tuple[Operand, Operand, DType]:
        # Give bare Python numbers the dtype of the other operand when
        # possible, so `b.add(i32_reg, 1)` does the obvious thing.
        a_known = isinstance(a, (Register, Imm))
        b_known = isinstance(b, (Register, Imm))
        if a_known and not b_known:
            a_op = self.operand(a)
            b_op = self.operand(b, a_op.dtype)
        elif b_known and not a_known:
            b_op = self.operand(b)
            a_op = self.operand(a, b_op.dtype)
        else:
            a_op, b_op = self.operand(a), self.operand(b)
        result = dtypes.promote(a_op.dtype, b_op.dtype)
        return self.cvt(a_op, result), self.cvt(b_op, result), result

    def binop(self, op: str, a: OperandLike, b: OperandLike) -> Register:
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary op '{op}'")
        a_op, b_op, result = self._coerce_pair(a, b)
        dst = self.fresh(result, op[:2])
        self.emit(BinOp(op, dst, a_op, b_op))
        return dst

    def unary(self, op: str, src: OperandLike) -> Register:
        if op not in UNARY_OPS:
            raise IRError(f"unknown unary op '{op}'")
        src_op = self.operand(src)
        dtype = dtypes.PRED if op == "not" else src_op.dtype
        if op in ("sqrt", "rsqrt", "exp", "log", "sin", "cos", "tanh") and not src_op.dtype.is_float:
            src_op = self.cvt(src_op, dtypes.F64)
            dtype = dtypes.F64
        dst = self.fresh(dtype, op[:2])
        self.emit(UnaryOp(op, dst, src_op))
        return dst

    def add(self, a, b):
        return self.binop("add", a, b)

    def sub(self, a, b):
        return self.binop("sub", a, b)

    def mul(self, a, b):
        return self.binop("mul", a, b)

    def div(self, a, b):
        return self.binop("div", a, b)

    def rem(self, a, b):
        return self.binop("rem", a, b)

    def min(self, a, b):
        return self.binop("min", a, b)

    def max(self, a, b):
        return self.binop("max", a, b)

    def cmp(self, op: str, a: OperandLike, b: OperandLike) -> Register:
        if op not in CMP_OPS:
            raise IRError(f"unknown comparison op '{op}'")
        a_op, b_op, _ = self._coerce_pair(a, b)
        dst = self.fresh(dtypes.PRED, "p")
        self.emit(Cmp(op, dst, a_op, b_op))
        return dst

    def eq(self, a, b):
        return self.cmp("eq", a, b)

    def ne(self, a, b):
        return self.cmp("ne", a, b)

    def lt(self, a, b):
        return self.cmp("lt", a, b)

    def le(self, a, b):
        return self.cmp("le", a, b)

    def gt(self, a, b):
        return self.cmp("gt", a, b)

    def ge(self, a, b):
        return self.cmp("ge", a, b)

    def logical_and(self, a: OperandLike, b: OperandLike) -> Register:
        a_op = self.operand(a, dtypes.PRED)
        b_op = self.operand(b, dtypes.PRED)
        dst = self.fresh(dtypes.PRED, "p")
        self.emit(BinOp("and", dst, a_op, b_op))
        return dst

    def logical_or(self, a: OperandLike, b: OperandLike) -> Register:
        a_op = self.operand(a, dtypes.PRED)
        b_op = self.operand(b, dtypes.PRED)
        dst = self.fresh(dtypes.PRED, "p")
        self.emit(BinOp("or", dst, a_op, b_op))
        return dst

    def select(self, pred: OperandLike, a: OperandLike, b: OperandLike) -> Register:
        a_op, b_op, result = self._coerce_pair(a, b)
        dst = self.fresh(result, "sel")
        self.emit(Select(dst, self.operand(pred, dtypes.PRED), a_op, b_op))
        return dst

    # -- memory ---------------------------------------------------------------

    def elem_addr(self, base: OperandLike, index: OperandLike, dtype: DType) -> Register:
        """Byte address of ``base[index]`` for elements of ``dtype``."""
        base_op = self.cvt(base, dtypes.U64)
        idx_op = self.cvt(index, dtypes.U64)
        offset = self.binop("mul", idx_op, Imm(dtype.itemsize, dtypes.U64))
        return self.binop("add", base_op, offset)

    def load(self, dtype: DType, addr: OperandLike, space: str = MemSpace.GLOBAL) -> Register:
        dst = self.fresh(dtype, "ld")
        self.emit(Load(dst, space, self.cvt(addr, dtypes.U64)))
        return dst

    def store(self, addr: OperandLike, src: OperandLike, space: str = MemSpace.GLOBAL) -> None:
        self.emit(Store(space, self.cvt(addr, dtypes.U64), self.operand(src)))

    def load_elem(self, base: OperandLike, index: OperandLike, dtype: DType,
                  space: str = MemSpace.GLOBAL) -> Register:
        return self.load(dtype, self.elem_addr(base, index, dtype), space)

    def store_elem(self, base: OperandLike, index: OperandLike, src: OperandLike,
                   dtype: DType, space: str = MemSpace.GLOBAL) -> None:
        self.store(self.elem_addr(base, index, dtype), self.cvt(src, dtype), space)

    def shared_alloc(self, dtype: DType, count: int) -> Register:
        if len(self._stack) != 1:
            raise IRError("shared memory must be allocated at kernel top level")
        dst = self.fresh(dtypes.U64, "smem")
        self.emit(SharedAlloc(dst, dtype, count))
        self.feature("shared_memory")
        return dst

    def atomic(self, op: str, addr: OperandLike, src: OperandLike,
               space: str = MemSpace.GLOBAL, dtype: DType | None = None,
               compare: OperandLike | None = None,
               want_old: bool = False) -> Register | None:
        if op not in ATOMIC_OPS:
            raise IRError(f"unknown atomic op '{op}'")
        src_op = self.operand(src) if dtype is None else self.cvt(src, dtype)
        dst = self.fresh(src_op.dtype, "old") if want_old or op == "cas" else None
        cmp_op = None if compare is None else self.cvt(compare, src_op.dtype)
        self.emit(AtomicOp(op, dst, space, self.cvt(addr, dtypes.U64), src_op, cmp_op))
        self.feature("atomics")
        return dst

    # -- special values ---------------------------------------------------------

    def special(self, which: str) -> Register:
        if which not in SpecialReg.ALL:
            raise IRError(f"unknown special register '{which}'")
        dst = self.fresh(dtypes.U32, which.replace(".", "_"))
        self.emit(SpecialRead(dst, which))
        return dst

    def global_id(self, dim: int = 0) -> Register:
        """``ctaid[dim] * ntid[dim] + tid[dim]`` widened to i64."""
        axis = "xyz"[dim]
        ctaid = self.special(f"ctaid.{axis}")
        ntid = self.special(f"ntid.{axis}")
        tid = self.special(f"tid.{axis}")
        wide = self.binop("mul", self.cvt(ctaid, dtypes.I64), self.cvt(ntid, dtypes.I64))
        return self.binop("add", wide, self.cvt(tid, dtypes.I64))

    def global_size(self, dim: int = 0) -> Register:
        """Total launched threads along ``dim`` as i64 (for grid-stride loops)."""
        axis = "xyz"[dim]
        nctaid = self.special(f"nctaid.{axis}")
        ntid = self.special(f"ntid.{axis}")
        return self.binop(
            "mul", self.cvt(nctaid, dtypes.I64), self.cvt(ntid, dtypes.I64)
        )

    def barrier(self) -> None:
        self.emit(Barrier())
        self.feature("barrier")

    def shuffle(self, mode: str, src: OperandLike, lane: OperandLike) -> Register:
        if mode not in SHUFFLE_MODES:
            raise IRError(f"unknown shuffle mode '{mode}'")
        src_op = self.operand(src)
        dst = self.fresh(src_op.dtype, "shfl")
        self.emit(Shuffle(mode, dst, src_op, self.cvt(lane, dtypes.U32)))
        self.feature("shuffle")
        return dst

    def exit(self) -> None:
        self.emit(Exit())

    # -- structured control flow --------------------------------------------

    @contextlib.contextmanager
    def if_(self, cond: OperandLike) -> Iterator[If]:
        """``with b.if_(p): ...`` — yields the If for a later orelse()."""
        instr = If(self.operand(cond, dtypes.PRED))
        self.emit(instr)
        self._stack.append(instr.then_body)
        try:
            yield instr
        finally:
            self._stack.pop()

    @contextlib.contextmanager
    def orelse(self, instr: If) -> Iterator[None]:
        self._stack.append(instr.else_body)
        try:
            yield
        finally:
            self._stack.pop()

    @contextlib.contextmanager
    def while_(self) -> Iterator["_WhileCtx"]:
        """Structured loop::

            with b.while_() as loop:
                with loop.cond():
                    loop.set_cond(b.lt(i, n))
                # loop body is emitted directly inside the with-block
                ...
        """
        instr = While(cond_body=[], cond=None, body=[])  # type: ignore[arg-type]
        self.emit(instr)
        ctx = _WhileCtx(self, instr)
        self._stack.append(instr.body)
        try:
            yield ctx
        except BaseException:
            self._stack.pop()
            raise
        else:
            self._stack.pop()
            if instr.cond is None:
                raise IRError("while_ loop closed without set_cond()")

    @contextlib.contextmanager
    def for_range(self, start: OperandLike, stop: OperandLike,
                  step: OperandLike = 1) -> Iterator[Register]:
        """Counted ascending loop; yields the induction register (i64)."""
        i = self.fresh(dtypes.I64, "i")
        self.mov(i, self.cvt(start, dtypes.I64))
        stop_op = self.cvt(stop, dtypes.I64)
        step_op = self.cvt(step, dtypes.I64)
        with self.while_() as loop:
            with loop.cond():
                loop.set_cond(self.lt(i, stop_op))
            yield i
            self.mov(i, self.add(i, step_op))

    # -- finalization ----------------------------------------------------------

    def build(self) -> KernelIR:
        from repro.isa.verifier import verify_kernel

        kernel = KernelIR(
            name=self.name,
            params=self.params,
            body=self._body,
            features=frozenset(self._features),
        )
        verify_kernel(kernel)
        return kernel


class _WhileCtx:
    """Helper handle yielded by :meth:`IRBuilder.while_`."""

    def __init__(self, builder: IRBuilder, instr: While):
        self._b = builder
        self._instr = instr

    @contextlib.contextmanager
    def cond(self) -> Iterator[None]:
        self._b._stack.append(self._instr.cond_body)
        try:
            yield
        finally:
            self._b._stack.pop()

    def set_cond(self, reg: Register) -> None:
        if reg.dtype != dtypes.PRED:
            raise IRError("loop condition must be a predicate register")
        self._instr.cond = reg
