"""Exception hierarchy for the simulated GPU ecosystem.

The hierarchy mirrors the failure surfaces of a real heterogeneous
toolchain: source-level rejections (:class:`FrontendError`), toolchain
rejections (:class:`CompileError` and friends), translator limitations
(:class:`TranslationError`), and runtime faults on the simulated devices
(:class:`DeviceError` and friends).

The compatibility probes in :mod:`repro.core.probes` rely on this taxonomy:
a probe that raises :class:`UnsupportedFeatureError` counts as a *feature
gap* (partial coverage), whereas :class:`UnsupportedRouteError` means the
route does not exist at all for the requested combination.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Source / frontend errors
# ---------------------------------------------------------------------------


class FrontendError(ReproError):
    """A source construct was rejected before IR generation."""


class KernelSyntaxError(FrontendError):
    """The kernel DSL compiler met an unsupported Python construct."""


class KernelTypeError(FrontendError):
    """Kernel parameter/operand types are inconsistent or unannotated."""


class JitTypeError(KernelTypeError):
    """The ``@repro.jit.kernel`` frontend rejected a Python function.

    Raised for signature violations (non-void return types, arity or
    annotation mismatches) and for any construct the restricted Python
    subset does not admit.  Carries the Python source location of the
    offending construct so diagnostics point at user code:

    Attributes:
        source_path: File the decorated function lives in (``None``
            when the location is unknown, e.g. a signature-level error).
        source_line: 1-based absolute line of the rejected construct.
    """

    def __init__(self, message: str, source_path: str | None = None,
                 source_line: int | None = None):
        super().__init__(message)
        self.source_path = source_path
        self.source_line = source_line


class LanguageError(FrontendError):
    """The programming model does not accept the source language.

    Example: SYCL is a C++17 model; presenting a Fortran translation unit
    raises this error (paper description 6).
    """


class DirectiveError(FrontendError):
    """An OpenMP/OpenACC directive string could not be parsed."""


# ---------------------------------------------------------------------------
# Compilation errors
# ---------------------------------------------------------------------------


class CompileError(ReproError):
    """A toolchain failed to lower a translation unit to a target ISA."""


class UnsupportedFeatureError(CompileError):
    """The toolchain recognizes the feature but does not implement it.

    Carries the feature name so probe harnesses can attribute coverage
    gaps; e.g. NVHPC's OpenMP frontend raising for a 5.0-only feature.
    """

    def __init__(self, feature: str, toolchain: str = "?", detail: str = ""):
        self.feature = feature
        self.toolchain = toolchain
        msg = f"feature '{feature}' is not supported by toolchain '{toolchain}'"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class UnsupportedTargetError(CompileError):
    """The toolchain cannot emit code for the requested ISA/device."""


class UnsupportedRouteError(CompileError):
    """No toolchain/translator chain exists for the combination at all."""


class LinkError(CompileError):
    """Module-level inconsistency detected when finalizing a binary."""


# ---------------------------------------------------------------------------
# IR errors
# ---------------------------------------------------------------------------


class IRError(ReproError):
    """Malformed intermediate representation."""


class VerificationError(IRError):
    """The IR verifier found a structural or type violation."""


class LegalizationError(IRError):
    """An IR construct cannot be legalized for the target ISA."""


# ---------------------------------------------------------------------------
# Translation (source-to-source) errors
# ---------------------------------------------------------------------------


class TranslationError(ReproError):
    """A source-to-source translator could not convert a construct."""

    def __init__(self, translator: str, construct: str, detail: str = ""):
        self.translator = translator
        self.construct = construct
        msg = f"{translator}: cannot translate construct '{construct}'"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


# ---------------------------------------------------------------------------
# Runtime / device errors
# ---------------------------------------------------------------------------


class DeviceError(ReproError):
    """Base class for simulated-device runtime failures."""


class InvalidBinaryError(DeviceError):
    """A device was asked to load a module for a foreign ISA.

    This is the simulator's equivalent of `CUDA_ERROR_INVALID_SOURCE` /
    `hipErrorInvalidDeviceFunction`: e.g. loading PTX onto an AMD device.
    """


class MemoryFaultError(DeviceError):
    """Out-of-bounds or use-after-free access to device memory."""


class AllocationError(DeviceError):
    """The device memory pool could not satisfy an allocation."""


class LaunchError(DeviceError):
    """Kernel launch configuration is invalid for the device."""


class StreamError(DeviceError):
    """Illegal stream/event operation (e.g. cross-device event wait)."""


class DivergentBarrierError(DeviceError):
    """``barrier()`` was executed by only part of a thread block.

    Real hardware deadlocks or corrupts state; the simulator raises.
    """


class ApiError(ReproError):
    """A programming-model host API was misused (wrong handle, order...)."""
