"""Shared vocabulary of the ecosystem: vendors, models, languages, ISAs.

These enums are the coordinate axes of the paper's Figure 1 and of every
registry in the package.  They are deliberately small, hashable value
types; richer metadata (device specs, route descriptions, ...) lives in
the modules that own it.
"""

from __future__ import annotations

import enum


class Vendor(enum.Enum):
    """The three vendors of dedicated HPC GPUs covered by the paper."""

    AMD = "AMD"
    INTEL = "Intel"
    NVIDIA = "NVIDIA"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Row order used by Figure 1 (alphabetical, as in the paper).
VENDOR_ORDER = (Vendor.AMD, Vendor.INTEL, Vendor.NVIDIA)


class Language(enum.Enum):
    """Programming languages considered by the paper.

    C is folded into C++ ("for the sake of brevity, this paper considers
    C++", §3).  Python is treated as its own single column per vendor.
    """

    CPP = "C++"
    FORTRAN = "Fortran"
    PYTHON = "Python"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Model(enum.Enum):
    """The programming models selected by the paper (§3).

    ``RAJA`` and ``OPENCL`` are this reproduction's *extension* models:
    §5 names them as the most notable exclusions ("RAJA ... similar in
    spirit to, albeit not as popular as Kokkos"; "OpenCL ... never
    gained much traction in the HPC-GPU space, mostly due to the
    lukewarm support by NVIDIA").  They are not part of Figure 1's
    column set (:data:`MODEL_ORDER`); the extended table in
    :mod:`repro.core.extended` covers them separately.
    """

    CUDA = "CUDA"
    HIP = "HIP"
    SYCL = "SYCL"
    OPENACC = "OpenACC"
    OPENMP = "OpenMP"
    STANDARD = "Standard"
    KOKKOS = "Kokkos"
    ALPAKA = "Alpaka"
    PYTHON = "Python"  # the per-vendor "etc · Python" column
    RAJA = "RAJA"  # extension (excluded by the paper, §5)
    OPENCL = "OpenCL"  # extension (excluded by the paper, §5)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Column order used by Figure 1.
MODEL_ORDER = (
    Model.CUDA,
    Model.HIP,
    Model.SYCL,
    Model.OPENACC,
    Model.OPENMP,
    Model.STANDARD,
    Model.KOKKOS,
    Model.ALPAKA,
    Model.PYTHON,
)

#: The extension columns (not part of Figure 1; see core.extended).
EXTENDED_MODEL_ORDER = (Model.RAJA, Model.OPENCL)

#: Languages applicable per model column: the eight C++/Fortran columns
#: plus the single Python column.
MODEL_LANGUAGES: dict[Model, tuple[Language, ...]] = {
    m: (Language.CPP, Language.FORTRAN) for m in MODEL_ORDER if m is not Model.PYTHON
}
MODEL_LANGUAGES[Model.PYTHON] = (Language.PYTHON,)
#: RAJA and OpenCL are C++-only (no Fortran layer exists for either).
MODEL_LANGUAGES[Model.RAJA] = (Language.CPP,)
MODEL_LANGUAGES[Model.OPENCL] = (Language.CPP,)


class ISA(enum.Enum):
    """Virtual instruction-set architectures of the simulated devices."""

    PTX = "ptx"  # NVIDIA
    AMDGCN = "amdgcn"  # AMD
    SPIRV = "spirv"  # Intel

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The native ISA of each vendor's devices.
VENDOR_ISA: dict[Vendor, ISA] = {
    Vendor.NVIDIA: ISA.PTX,
    Vendor.AMD: ISA.AMDGCN,
    Vendor.INTEL: ISA.SPIRV,
}

ISA_VENDOR: dict[ISA, Vendor] = {isa: v for v, isa in VENDOR_ISA.items()}


class Provider(enum.Enum):
    """Who provides a support route (drives the §3 category split)."""

    NVIDIA = "NVIDIA"
    AMD = "AMD"
    INTEL = "Intel"
    HPE = "HPE"  # Cray Programming Environment
    COMMUNITY = "community"  # GCC, LLVM, Open SYCL, Kokkos, Alpaka, ...

    def is_device_vendor(self, vendor: Vendor) -> bool:
        """True when this provider *is* the vendor of the device."""
        return self.value == vendor.value


PROVIDER_OF_VENDOR: dict[Vendor, Provider] = {
    Vendor.NVIDIA: Provider.NVIDIA,
    Vendor.AMD: Provider.AMD,
    Vendor.INTEL: Provider.INTEL,
}


class Maturity(enum.Enum):
    """Lifecycle state of a route's implementation (from the §4 prose)."""

    PRODUCTION = "production"
    EXPERIMENTAL = "experimental"
    RESEARCH = "research"
    UNMAINTAINED = "unmaintained"

    @property
    def is_dependable(self) -> bool:
        """Routes below this bar can at best yield *limited support*."""
        return self is Maturity.PRODUCTION


class Mechanism(enum.Enum):
    """How a route realizes support for a model on a platform."""

    NATIVE = "native"  # the device vendor's own direct implementation
    MAPPING = "mapping"  # runtime/compile-time mapping onto a native model
    TRANSLATION = "translation"  # source-to-source conversion tool
    LAYERED = "layered"  # higher-level library over a native backend
    BINDINGS = "bindings"  # pre-made FFI interfaces (e.g. hipfort)


class SupportCategory(enum.Enum):
    """The six rating categories of §3, ordered from best to worst.

    The ``symbol`` is a plain-text rendering of the paper's glyphs so the
    table renderers can reproduce Figure 1's look in a terminal.
    """

    FULL = ("full support", "●", 5)
    INDIRECT = ("indirect good support", "◉", 4)
    SOME = ("some support", "◐", 3)
    NONVENDOR = ("non-vendor good support", "○", 2)
    LIMITED = ("limited support", "◌", 1)
    NONE = ("no support", "✗", 0)

    def __init__(self, label: str, symbol: str, rank: int):
        self.label = label
        self.symbol = symbol
        self.rank = rank

    @property
    def is_usable(self) -> bool:
        """Whether a scientist could base an application on this support."""
        return self.rank >= SupportCategory.NONVENDOR.rank

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


#: Order in which categories are listed in §3 (best first).
CATEGORY_ORDER = (
    SupportCategory.FULL,
    SupportCategory.INDIRECT,
    SupportCategory.SOME,
    SupportCategory.NONVENDOR,
    SupportCategory.LIMITED,
    SupportCategory.NONE,
)


def all_cells() -> list[tuple[Vendor, Model, Language]]:
    """Enumerate the 51 (vendor, model, language) combinations of Figure 1."""
    cells: list[tuple[Vendor, Model, Language]] = []
    for vendor in VENDOR_ORDER:
        for model in MODEL_ORDER:
            for language in MODEL_LANGUAGES[model]:
                cells.append((vendor, model, language))
    return cells
