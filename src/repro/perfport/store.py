"""Content-addressed persistent store for perf-matrix cells.

Same design as :class:`repro.service.store.ResultStore` (atomic writes,
filename-embedded key, corrupt entry = miss) under a ``perf/``
subdirectory, so one ``--store DIR`` serves both the compatibility
cells and the perf cells.

The perf key extends the environment fingerprint with everything a
*simulated timing* can additionally observe:

* the perf-model constants (:func:`repro.gpu.perfmodel.perf_constants`)
  — stream efficiency and the atomic traffic penalty;
* the three default device specs (datasheet bandwidth, clocks, CU
  counts ... the full spec repr);
* the workload parameters (n, reps, dtype width);
* the perf-store schema version.

Change any of these and every lookup misses; leave them alone and a
warm rerun reloads all cells with **zero stream-kernel executions**
(JSON float serialization round-trips ``repr`` exactly, so a reloaded
cell is bit-identical to the evaluated one).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path

from repro.core.classifier import DEFAULT_THRESHOLDS, Thresholds
from repro.core.routes import routes_for
from repro.enums import VENDOR_ORDER, Language, Model, Vendor
from repro.gpu.perfmodel import perf_constants
from repro.gpu.specs import default_spec
from repro.perfport.matrix import Cell, PerfCell, PerfParams, RoutePerf
from repro.service.store import ResultStore, StoreStats, environment_fingerprint
from repro.workloads.babelstream import STREAM_KERNELS

_log = logging.getLogger(__name__)

#: Bump when the perf on-disk layout or serialization schema changes.
#: v2: route entries carry the kernelsan rollup (lint_errors,
#: lint_warnings) now that perf builds compile with sanitize=True.
PERF_SCHEMA = 2


def perf_fingerprint(params: PerfParams,
                     thresholds: Thresholds = DEFAULT_THRESHOLDS) -> str:
    """Hash of every input a stored perf cell depends on."""
    h = hashlib.sha256()
    h.update(f"perf-schema={PERF_SCHEMA}".encode())
    h.update(environment_fingerprint(thresholds).encode())
    for name, value in sorted(perf_constants().items()):
        h.update(f"|const:{name}={value!r}".encode())
    for vendor in VENDOR_ORDER:
        h.update(f"|spec:{default_spec(vendor)!r}".encode())
    h.update(f"|params:{sorted(params.as_dict().items())!r}".encode())
    return h.hexdigest()


# -- serialization ------------------------------------------------------------


def perf_cell_to_dict(cell: PerfCell) -> dict:
    """Plain-JSON form of one perf cell (stable; the server reuses it)."""
    return {
        "vendor": cell.vendor.value,
        "model": cell.model.value,
        "language": cell.language.value,
        "device": cell.device,
        "peak_gbs": cell.peak_gbs,
        "routes": [
            {
                "route_id": r.route_id,
                "via": r.via,
                "translated": r.translated,
                "ok": r.ok,
                "error": r.error,
                "verified": r.verified,
                "kernels_executed": r.kernels_executed,
                "best_seconds": {k: r.best_seconds[k]
                                 for k in STREAM_KERNELS
                                 if k in r.best_seconds},
                "lint_errors": r.lint_errors,
                "lint_warnings": r.lint_warnings,
            }
            for r in cell.routes
        ],
    }


class PerfStoreIntegrityError(Exception):
    """A stored perf payload does not match the live registries."""


def perf_cell_from_dict(payload: dict) -> PerfCell:
    """Reconstruct a :class:`PerfCell` bit-identical to the original."""
    vendor = Vendor(payload["vendor"])
    model = Model(payload["model"])
    language = Language(payload["language"])
    known = {r.route_id for r in routes_for(vendor, model, language)}
    routes: list[RoutePerf] = []
    for entry in payload["routes"]:
        if entry["route_id"] not in known:
            raise PerfStoreIntegrityError(
                f"stored route '{entry['route_id']}' is not registered for "
                f"{vendor.value}/{model.value}/{language.value}")
        routes.append(RoutePerf(
            route_id=entry["route_id"],
            via=entry["via"],
            translated=entry["translated"],
            ok=entry["ok"],
            error=entry["error"],
            verified=entry["verified"],
            kernels_executed=entry["kernels_executed"],
            best_seconds={k: float(v)
                          for k, v in entry["best_seconds"].items()},
            lint_errors=int(entry.get("lint_errors", 0)),
            lint_warnings=int(entry.get("lint_warnings", 0)),
        ))
    return PerfCell(vendor=vendor, model=model, language=language,
                    device=payload["device"],
                    peak_gbs=float(payload["peak_gbs"]), routes=routes)


# -- the store ---------------------------------------------------------------


class PerfStore:
    """On-disk perf-cell store rooted at ``<root>/perf/``.

    Layout::

        <root>/perf/
          meta.json                    # schema + current perf fingerprint
          cells/<v>_<m>_<l>.<key12>.json
    """

    def __init__(self, root: str | os.PathLike,
                 params: PerfParams = PerfParams(),
                 thresholds: Thresholds = DEFAULT_THRESHOLDS,
                 metrics=None):
        self.root = Path(root) / "perf"
        self.params = params
        self.thresholds = thresholds
        self.stats = StoreStats()
        #: Optional :class:`~repro.service.metrics.MetricsRegistry`;
        #: corrupt entries are counted there when present.
        self.metrics = metrics
        self._fingerprint: str | None = None
        (self.root / "cells").mkdir(parents=True, exist_ok=True)

    def _corrupt(self, path: Path, exc: Exception) -> None:
        """A stored entry exists but cannot be decoded: warn, count, miss."""
        self.stats._inc("invalid")
        _log.warning(
            "corrupt perf-store entry treated as miss: path=%s error=%s: %s",
            path, type(exc).__name__, exc)
        if self.metrics is not None:
            self.metrics.counter("perf_store_corrupt_entries").inc()

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = perf_fingerprint(self.params, self.thresholds)
            ResultStore._atomic_write(
                self.root / "meta.json",
                json.dumps({"schema": PERF_SCHEMA,
                            "perf_fingerprint": self._fingerprint},
                           indent=2) + "\n")
        return self._fingerprint

    def _path(self, cell: Cell) -> Path:
        vendor, model, language = cell
        h = hashlib.sha256()
        h.update(self.fingerprint.encode())
        h.update(f"|{vendor.value}|{model.value}|{language.value}".encode())
        slug = f"{vendor.value}_{model.value}_{language.value}".lower()
        slug = slug.replace("++", "pp").replace("/", "-").replace(" ", "-")
        return self.root / "cells" / f"{slug}.{h.hexdigest()[:12]}.json"

    def load(self, cell: Cell) -> PerfCell | None:
        """The stored perf cell for the *current* fingerprint, or None."""
        path = self._path(cell)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats._inc("misses")
            return None
        except (OSError, json.JSONDecodeError) as exc:
            self._corrupt(path, exc)
            return None
        try:
            result = perf_cell_from_dict(payload)
        except (PerfStoreIntegrityError, KeyError, ValueError,
                TypeError) as exc:
            self._corrupt(path, exc)
            return None
        self.stats._inc("hits")
        return result

    def save(self, cell: PerfCell) -> Path:
        """Persist one perf cell (atomic write)."""
        path = self._path((cell.vendor, cell.model, cell.language))
        ResultStore._atomic_write(
            path, json.dumps(perf_cell_to_dict(cell), indent=1) + "\n")
        self.stats._inc("writes")
        return path

    def entries(self) -> list[Path]:
        return sorted((self.root / "cells").glob("*.json"))
