"""Performance-portability data model and the sequential reference build.

One :class:`PerfCell` per Figure-1 cell: every *viable* route of the
cell (support category better than "no support" in the compatibility
matrix) drives the five BabelStream kernels through its own runtime
chain, and the cell's headline number is the best route's efficiency —
the harmonic mean over the five kernels of achieved GB/s as a fraction
of the device's datasheet bandwidth.

Everything here is plain data + a deterministic loop; the concurrent
build (:mod:`repro.perfport.scheduler`) reassembles the identical
structures from per-route jobs, and the store
(:mod:`repro.perfport.store`) round-trips them through JSON exactly
(Python float repr is lossless), so dataclass equality doubles as the
bit-identity check in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.matrix import CompatibilityMatrix
from repro.core.routes import Route, routes_for
from repro.enums import Language, Model, SupportCategory, Vendor, all_cells
from repro.gpu.specs import default_spec
from repro.workloads.babelstream import STREAM_KERNELS, STREAM_MOVED_ARRAYS

Cell = tuple[Vendor, Model, Language]

#: Default workload shape: big enough that kernels are bandwidth-bound,
#: small enough that a full 51-cell sweep stays interactive.
DEFAULT_N = 1 << 16
DEFAULT_REPS = 3


@dataclass(frozen=True)
class PerfParams:
    """Workload parameters of one perf-matrix evaluation."""

    n: int = DEFAULT_N
    reps: int = DEFAULT_REPS
    dtype_bytes: int = 8

    def as_dict(self) -> dict:
        return {"n": self.n, "reps": self.reps,
                "dtype_bytes": self.dtype_bytes}


@dataclass
class RoutePerf:
    """Five-kernel stream timings for one route of one cell."""

    route_id: str
    via: str
    translated: bool
    ok: bool
    error: str | None = None
    verified: bool = False
    kernels_executed: int = 0
    best_seconds: dict[str, float] = field(default_factory=dict)
    #: kernelsan rollup of everything the run compiled (perf builds run
    #: with ``sanitize=True``, so timing a route also lints it).
    lint_errors: int = 0
    lint_warnings: int = 0

    def bandwidth_gbs(self, kernel: str, params: PerfParams) -> float:
        moved = STREAM_MOVED_ARRAYS[kernel] * params.n * params.dtype_bytes
        secs = self.best_seconds[kernel]
        return moved / secs / 1e9 if secs > 0 else 0.0

    def efficiency(self, params: PerfParams, peak_gbs: float) -> float:
        """Harmonic mean of the five per-kernel fractions of peak.

        Zero for failed or unverified runs — a wrong answer fast is not
        performance.
        """
        if not (self.ok and self.verified):
            return 0.0
        fractions = [
            self.bandwidth_gbs(k, params) / peak_gbs for k in STREAM_KERNELS
        ]
        if any(f <= 0 for f in fractions):
            return 0.0
        return len(fractions) / sum(1.0 / f for f in fractions)


@dataclass
class PerfCell:
    """Perf evaluation of one (vendor, model, language) cell."""

    vendor: Vendor
    model: Model
    language: Language
    device: str
    peak_gbs: float
    routes: list[RoutePerf] = field(default_factory=list)

    @property
    def supported(self) -> bool:
        return any(r.ok and r.verified for r in self.routes)

    def best_route(self, params: PerfParams) -> RoutePerf | None:
        """The viable route with the highest efficiency (ties: registry
        order, i.e. first wins — deterministic)."""
        best: RoutePerf | None = None
        best_eff = 0.0
        for r in self.routes:
            eff = r.efficiency(params, self.peak_gbs)
            if eff > best_eff:
                best, best_eff = r, eff
        return best

    def efficiency(self, params: PerfParams) -> float:
        """Achieved fraction of peak via the best viable route (0 when
        the cell is unsupported)."""
        best = self.best_route(params)
        return best.efficiency(params, self.peak_gbs) if best else 0.0


@dataclass
class PerfMatrix:
    """The full perf-portability matrix over all Figure-1 cells."""

    params: PerfParams
    cells: dict[Cell, PerfCell]

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def cell(self, vendor: Vendor, model: Model,
             language: Language) -> PerfCell:
        return self.cells[(vendor, model, language)]

    def efficiency(self, vendor: Vendor, model: Model,
                   language: Language) -> float:
        return self.cells[(vendor, model, language)].efficiency(self.params)


def viable_routes(compat: CompatibilityMatrix, cell: Cell) -> list[Route]:
    """Routes worth timing: compatibility category above "no support".

    Registry order is preserved — it is the deterministic assembly order
    shared by the sequential and concurrent builds.
    """
    vendor, model, language = cell
    cell_result = compat.cells.get(cell)
    if cell_result is None:
        return []
    viable_ids = {
        rr.route.route_id
        for rr in cell_result.routes
        if rr.category is not SupportCategory.NONE
    }
    return [r for r in routes_for(vendor, model, language)
            if r.route_id in viable_ids]


def assemble_perf_cell(cell: Cell, route_perfs: list[RoutePerf]) -> PerfCell:
    """Fold per-route results (in registry order) into one cell."""
    vendor, _model, _language = cell
    spec = default_spec(vendor)
    return PerfCell(
        vendor=cell[0], model=cell[1], language=cell[2],
        device=spec.name, peak_gbs=spec.bandwidth_gbs,
        routes=route_perfs,
    )


def build_perf_matrix(compat: CompatibilityMatrix,
                      params: PerfParams = PerfParams()) -> PerfMatrix:
    """Sequential reference build: every viable route of every cell.

    The concurrent scheduler must be bit-identical to this loop at every
    worker count.
    """
    from repro.perfport.stream import run_stream_via_route

    cells: dict[Cell, PerfCell] = {}
    for cell in all_cells():
        perfs = [run_stream_via_route(route, params)
                 for route in viable_routes(compat, cell)]
        cells[cell] = assemble_perf_cell(cell, perfs)
    return PerfMatrix(params=params, cells=cells)
