"""Concurrent perf-matrix build on the generic job engine.

The perf DAG is two layers per cell::

    per route:  stream (five timed kernels through the route's chain)
    per cell:   stream[routes...] ──> cell (assemble + persist)

Stream jobs are pairwise independent — each constructs a **fresh
device** (the simulated clock is device state) and its own runtime
chain — so any interleaving is equivalent to the sequential
:func:`repro.perfport.matrix.build_perf_matrix` loop and the result is
bit-identical at every ``--jobs`` count.

The engine (:class:`repro.service.scheduler.JobEngine`) contributes the
thread pool, dependency bookkeeping, timeout/retry/backoff, cooperative
cancellation, and the fault-injection seam; this module contributes only
the DAG shape and the job bodies.  Perf jobs use their own
:class:`PerfJobKind` so the matrix build's per-kind metric names stay
untouched.

Like the matrix scheduler, the perf build inherits the engine's
``execution="thread" | "process"`` knob: in process mode each cell's
viable routes are streamed inside one worker process (fresh device per
route, exactly like the sequential loop), the finished
:class:`PerfCell` is published into the content-addressed perf store
when one is configured, and the serialized payload travels back for
canonical-order assembly — bit-identical at every worker count on both
backends.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.classifier import DEFAULT_THRESHOLDS, Thresholds
from repro.core.matrix import CompatibilityMatrix
from repro.core.routes import Route
from repro.enums import all_cells
from repro.perfport.matrix import (
    Cell,
    PerfCell,
    PerfMatrix,
    PerfParams,
    assemble_perf_cell,
    viable_routes,
)
from repro.perfport.store import PerfStore
from repro.perfport.stream import run_stream_via_route
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import EXECUTION_PROCESS, EXECUTION_THREAD, Job, JobEngine
from repro.service.store import ResultStore


class PerfJobKind(enum.Enum):
    """Job kinds of the perf build DAG (distinct from the matrix
    build's :class:`repro.service.scheduler.JobKind`)."""

    STREAM = "stream"
    PERF_CELL = "perf_cell"


@dataclass
class PerfBuildReport:
    """Outcome of one scheduled perf build."""

    matrix: PerfMatrix
    metrics: MetricsRegistry
    jobs: int
    elapsed_s: float
    cells_from_store: int
    cells_evaluated: int
    store: PerfStore | None = None
    compat_report: object | None = None  # BuildReport of the compat phase

    def summary_line(self) -> str:
        reuse = (f"{self.cells_from_store} from store, "
                 if self.store is not None else "")
        return (f"{self.matrix.n_cells} perf cells ({reuse}"
                f"{self.cells_evaluated} evaluated) with {self.jobs} "
                f"worker(s) in {self.elapsed_s:.2f}s")


def _eval_perf_cell_task(
    cell_values: tuple[str, str, str],
    route_ids: tuple[str, ...],
    params: PerfParams,
    thresholds,
    store_root: str | None,
) -> tuple[dict, dict]:
    """Worker body: stream one cell's viable routes, publish, serialize.

    ``route_ids`` arrive in registry order (the coordinator derived them
    from the compat matrix, which does not travel to the worker); the
    worker resolves them against the live registry and preserves that
    order, so the payload reconstructs bit-identically via
    ``perf_cell_from_dict``.
    """
    from repro.core.routes import routes_for
    from repro.enums import Language, Model, Vendor
    from repro.perfport.store import PerfStore, perf_cell_to_dict

    vendor = Vendor(cell_values[0])
    model = Model(cell_values[1])
    language = Language(cell_values[2])
    by_id = {r.route_id: r for r in routes_for(vendor, model, language)}
    perfs = [run_stream_via_route(by_id[rid], params) for rid in route_ids]
    result = assemble_perf_cell((vendor, model, language), perfs)
    publishes = 0
    if store_root is not None:
        store = _worker_perf_store(store_root, params, thresholds)
        store.save(result)
        publishes = 1
    return perf_cell_to_dict(result), {
        "stream_runs": len(route_ids),
        "store_publishes": publishes,
    }


#: Per-worker-process perf-store handles, keyed by (root, params).
_WORKER_PERF_STORES: dict = {}


def _worker_perf_store(root: str, params: PerfParams,
                       thresholds) -> PerfStore:
    key = (root, repr(params), thresholds)
    store = _WORKER_PERF_STORES.get(key)
    if store is None:
        store = _WORKER_PERF_STORES[key] = PerfStore(
            root, params=params, thresholds=thresholds)
    return store


class PerfScheduler(JobEngine):
    """Builds the perf matrix as a job DAG on a thread pool."""

    worker_name = "perf-worker"

    def __init__(
        self,
        jobs: int | None = 1,
        *,
        compat: CompatibilityMatrix,
        execution: str = EXECUTION_THREAD,
        params: PerfParams = PerfParams(),
        store: PerfStore | None = None,
        thresholds=None,
        metrics: MetricsRegistry | None = None,
        timeout_s: float = 120.0,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        fault_hook: Callable[[Job, int], None] | None = None,
    ):
        super().__init__(
            jobs,
            execution=execution,
            metrics=metrics,
            timeout_s=timeout_s,
            max_retries=max_retries,
            backoff_s=backoff_s,
            fault_hook=fault_hook,
        )
        self.compat = compat
        self.params = params
        self.store = store
        self.thresholds = (thresholds if thresholds is not None
                           else (store.thresholds if store is not None
                                 else DEFAULT_THRESHOLDS))

    # -- DAG construction --------------------------------------------------

    def _build_cell_jobs(self, cell: Cell) -> int:
        stream_ids = []
        for route in viable_routes(self.compat, cell):
            job = Job(
                self._next_id(), PerfJobKind.STREAM, cell, route=route,
                fn=lambda ws, r=route: self._run_stream(r))
            stream_ids.append(self._add(job))
        job = Job(
            self._next_id(), PerfJobKind.PERF_CELL, cell,
            deps=tuple(stream_ids),
            fn=lambda ws, c=cell, ids=tuple(stream_ids):
                self._run_cell(c, ids))
        return self._add(job)

    # -- job bodies --------------------------------------------------------

    def _run_stream(self, route: Route):
        self.metrics.counter("stream_runs").inc()
        return run_stream_via_route(route, self.params)

    def _run_cell(self, cell: Cell, stream_ids: tuple[int, ...]) -> PerfCell:
        perfs = [self._results[i] for i in stream_ids]
        result = assemble_perf_cell(cell, perfs)
        if self.store is not None:
            self.store.save(result)
            self.metrics.counter("perf_store_writes").inc()
        return result

    # -- the process backend: one task per cell ----------------------------

    def _build_cells_in_processes(self, missing: list[Cell]
                                  ) -> dict[Cell, PerfCell]:
        """Stream ``missing`` cells' routes on the worker-process fleet."""
        from repro.perfport.store import perf_cell_from_dict

        store_root = (str(self.store.root.parent)
                      if self.store is not None else None)
        jobs_ = [Job(self._next_id(), PerfJobKind.PERF_CELL, cell)
                 for cell in missing]
        args_list = [
            (tuple(p.value for p in cell),
             tuple(r.route_id for r in viable_routes(self.compat, cell)),
             self.params, self.thresholds, store_root)
            for cell in missing
        ]
        payloads = self.run_tasks_in_processes(
            jobs_, _eval_perf_cell_task, args_list)
        evaluated: dict[Cell, PerfCell] = {}
        for cell, (payload, stats) in zip(missing, payloads):
            self.metrics.counter("stream_runs").inc(stats["stream_runs"])
            if stats["store_publishes"]:
                self.metrics.counter("perf_store_writes").inc(
                    stats["store_publishes"])
                self.store.stats._inc("writes")
            evaluated[cell] = perf_cell_from_dict(payload)
        return evaluated

    # -- public API --------------------------------------------------------

    def build(self) -> PerfBuildReport:
        """Evaluate (or load) every cell and assemble the perf matrix."""
        start = time.monotonic()
        self.metrics.gauge("perf_workers").set(self.jobs)
        cell_jobs: dict[Cell, int] = {}
        missing: list[Cell] = []
        stored: dict[Cell, PerfCell] = {}
        use_processes = self.execution == EXECUTION_PROCESS
        for cell in all_cells():
            if self.store is not None:
                cached = self.store.load(cell)
                if cached is not None:
                    stored[cell] = cached
                    self.metrics.counter("perf_store_hits").inc()
                    continue
                self.metrics.counter("perf_store_misses").inc()
            if use_processes:
                missing.append(cell)
            else:
                cell_jobs[cell] = self._build_cell_jobs(cell)

        if use_processes:
            evaluated = self._build_cells_in_processes(missing)
        else:
            self.run_all()
            evaluated = {cell: self._results[job_id]
                         for cell, job_id in cell_jobs.items()}

        cells = {}
        for cell in all_cells():
            if cell in stored:
                cells[cell] = stored[cell]
            else:
                cells[cell] = evaluated[cell]
        matrix = PerfMatrix(params=self.params, cells=cells)
        self.metrics.counter("perf_builds").inc()
        return PerfBuildReport(
            matrix=matrix,
            metrics=self.metrics,
            jobs=self.jobs,
            elapsed_s=time.monotonic() - start,
            cells_from_store=len(stored),
            cells_evaluated=len(evaluated),
            store=self.store,
        )


def run_perf_matrix(
    jobs: int | None = 1,
    *,
    execution: str = EXECUTION_THREAD,
    store: str | None = None,
    params: PerfParams = PerfParams(),
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    metrics: MetricsRegistry | None = None,
    compat: CompatibilityMatrix | None = None,
    timeout_s: float = 120.0,
    max_retries: int = 2,
    backoff_s: float = 0.05,
    fault_hook: Callable[[Job, int], None] | None = None,
) -> PerfBuildReport:
    """One-call perf-portability evaluation.

    Builds (or reloads) the compatibility matrix first — viability of a
    route is a compat question — then times every viable route.  One
    ``store`` directory persists both: compat cells at its root, perf
    cells under ``<store>/perf/``, each behind its own fingerprint, so
    a warm rerun executes zero probes *and* zero stream kernels.
    """
    from repro.service.scheduler import build_matrix_concurrent

    metrics = metrics if metrics is not None else MetricsRegistry()
    compat_report = None
    if compat is None:
        compat_store = (ResultStore(store, thresholds=thresholds,
                                    metrics=metrics)
                        if store is not None else None)
        compat_report = build_matrix_concurrent(
            jobs, execution=execution, store=compat_store,
            thresholds=thresholds, metrics=metrics)
        compat = compat_report.matrix
    perf_store = (PerfStore(store, params=params, thresholds=thresholds,
                            metrics=metrics)
                  if store is not None else None)
    scheduler = PerfScheduler(
        jobs,
        compat=compat,
        execution=execution,
        params=params,
        store=perf_store,
        thresholds=thresholds,
        metrics=metrics,
        timeout_s=timeout_s,
        max_retries=max_retries,
        backoff_s=backoff_s,
        fault_hook=fault_hook,
    )
    report = scheduler.build()
    report.compat_report = compat_report
    return report
