"""Concurrent perf-matrix build on the generic job engine.

The perf DAG is two layers per cell::

    per route:  stream (five timed kernels through the route's chain)
    per cell:   stream[routes...] ──> cell (assemble + persist)

Stream jobs are pairwise independent — each constructs a **fresh
device** (the simulated clock is device state) and its own runtime
chain — so any interleaving is equivalent to the sequential
:func:`repro.perfport.matrix.build_perf_matrix` loop and the result is
bit-identical at every ``--jobs`` count.

The engine (:class:`repro.service.scheduler.JobEngine`) contributes the
thread pool, dependency bookkeeping, timeout/retry/backoff, cooperative
cancellation, and the fault-injection seam; this module contributes only
the DAG shape and the job bodies.  Perf jobs use their own
:class:`PerfJobKind` so the matrix build's per-kind metric names stay
untouched.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.classifier import DEFAULT_THRESHOLDS, Thresholds
from repro.core.matrix import CompatibilityMatrix
from repro.core.routes import Route
from repro.enums import all_cells
from repro.perfport.matrix import (
    Cell,
    PerfCell,
    PerfMatrix,
    PerfParams,
    assemble_perf_cell,
    viable_routes,
)
from repro.perfport.store import PerfStore
from repro.perfport.stream import run_stream_via_route
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import Job, JobEngine
from repro.service.store import ResultStore


class PerfJobKind(enum.Enum):
    """Job kinds of the perf build DAG (distinct from the matrix
    build's :class:`repro.service.scheduler.JobKind`)."""

    STREAM = "stream"
    PERF_CELL = "perf_cell"


@dataclass
class PerfBuildReport:
    """Outcome of one scheduled perf build."""

    matrix: PerfMatrix
    metrics: MetricsRegistry
    jobs: int
    elapsed_s: float
    cells_from_store: int
    cells_evaluated: int
    store: PerfStore | None = None
    compat_report: object | None = None  # BuildReport of the compat phase

    def summary_line(self) -> str:
        reuse = (f"{self.cells_from_store} from store, "
                 if self.store is not None else "")
        return (f"{self.matrix.n_cells} perf cells ({reuse}"
                f"{self.cells_evaluated} evaluated) with {self.jobs} "
                f"worker(s) in {self.elapsed_s:.2f}s")


class PerfScheduler(JobEngine):
    """Builds the perf matrix as a job DAG on a thread pool."""

    worker_name = "perf-worker"

    def __init__(
        self,
        jobs: int = 1,
        *,
        compat: CompatibilityMatrix,
        params: PerfParams = PerfParams(),
        store: PerfStore | None = None,
        metrics: MetricsRegistry | None = None,
        timeout_s: float = 120.0,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        fault_hook: Callable[[Job, int], None] | None = None,
    ):
        super().__init__(
            jobs,
            metrics=metrics,
            timeout_s=timeout_s,
            max_retries=max_retries,
            backoff_s=backoff_s,
            fault_hook=fault_hook,
        )
        self.compat = compat
        self.params = params
        self.store = store

    # -- DAG construction --------------------------------------------------

    def _build_cell_jobs(self, cell: Cell) -> int:
        stream_ids = []
        for route in viable_routes(self.compat, cell):
            job = Job(
                self._next_id(), PerfJobKind.STREAM, cell, route=route,
                fn=lambda ws, r=route: self._run_stream(r))
            stream_ids.append(self._add(job))
        job = Job(
            self._next_id(), PerfJobKind.PERF_CELL, cell,
            deps=tuple(stream_ids),
            fn=lambda ws, c=cell, ids=tuple(stream_ids):
                self._run_cell(c, ids))
        return self._add(job)

    # -- job bodies --------------------------------------------------------

    def _run_stream(self, route: Route):
        self.metrics.counter("stream_runs").inc()
        return run_stream_via_route(route, self.params)

    def _run_cell(self, cell: Cell, stream_ids: tuple[int, ...]) -> PerfCell:
        perfs = [self._results[i] for i in stream_ids]
        result = assemble_perf_cell(cell, perfs)
        if self.store is not None:
            self.store.save(result)
            self.metrics.counter("perf_store_writes").inc()
        return result

    # -- public API --------------------------------------------------------

    def build(self) -> PerfBuildReport:
        """Evaluate (or load) every cell and assemble the perf matrix."""
        start = time.monotonic()
        self.metrics.gauge("perf_workers").set(self.jobs)
        cell_jobs: dict[Cell, int] = {}
        stored: dict[Cell, PerfCell] = {}
        for cell in all_cells():
            if self.store is not None:
                cached = self.store.load(cell)
                if cached is not None:
                    stored[cell] = cached
                    self.metrics.counter("perf_store_hits").inc()
                    continue
                self.metrics.counter("perf_store_misses").inc()
            cell_jobs[cell] = self._build_cell_jobs(cell)

        self.run_all()

        cells = {}
        for cell in all_cells():
            if cell in stored:
                cells[cell] = stored[cell]
            else:
                cells[cell] = self._results[cell_jobs[cell]]
        matrix = PerfMatrix(params=self.params, cells=cells)
        self.metrics.counter("perf_builds").inc()
        return PerfBuildReport(
            matrix=matrix,
            metrics=self.metrics,
            jobs=self.jobs,
            elapsed_s=time.monotonic() - start,
            cells_from_store=len(stored),
            cells_evaluated=len(cell_jobs),
            store=self.store,
        )


def run_perf_matrix(
    jobs: int = 1,
    *,
    store: str | None = None,
    params: PerfParams = PerfParams(),
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    metrics: MetricsRegistry | None = None,
    compat: CompatibilityMatrix | None = None,
    timeout_s: float = 120.0,
    max_retries: int = 2,
    backoff_s: float = 0.05,
    fault_hook: Callable[[Job, int], None] | None = None,
) -> PerfBuildReport:
    """One-call perf-portability evaluation.

    Builds (or reloads) the compatibility matrix first — viability of a
    route is a compat question — then times every viable route.  One
    ``store`` directory persists both: compat cells at its root, perf
    cells under ``<store>/perf/``, each behind its own fingerprint, so
    a warm rerun executes zero probes *and* zero stream kernels.
    """
    from repro.service.scheduler import build_matrix_concurrent

    metrics = metrics if metrics is not None else MetricsRegistry()
    compat_report = None
    if compat is None:
        compat_store = (ResultStore(store, thresholds=thresholds,
                                    metrics=metrics)
                        if store is not None else None)
        compat_report = build_matrix_concurrent(
            jobs, store=compat_store, thresholds=thresholds, metrics=metrics)
        compat = compat_report.matrix
    perf_store = (PerfStore(store, params=params, thresholds=thresholds,
                            metrics=metrics)
                  if store is not None else None)
    scheduler = PerfScheduler(
        jobs,
        compat=compat,
        params=params,
        store=perf_store,
        metrics=metrics,
        timeout_s=timeout_s,
        max_retries=max_retries,
        backoff_s=backoff_s,
        fault_hook=fault_hook,
    )
    report = scheduler.build()
    report.compat_report = compat_report
    return report
