"""Drive the BabelStream kernels through one registry route.

The bridge between the route registry and the workload layer: a route's
``probe_suite`` names the API family it exposes (cuda_cpp, sycl_cpp,
openmp, ...), :data:`~repro.workloads.babelstream.SUITE_ADAPTERS` maps
that family to a stream adapter, and the route's :meth:`Route.chain`
becomes the adapter's injected ``runtime_factory`` — so a translated
route (hipify, SYCLomatic, acc2omp, GPUFORT) times the *translated*
pipeline, translator and all.

Each run gets a **fresh device**: the simulated clock is device state,
so sharing devices across runs would make timings depend on execution
order.  A fresh device per run is what makes the concurrent perf build
bit-identical at every worker count.
"""

from __future__ import annotations

from repro.core.routes import Route
from repro.errors import ReproError
from repro.gpu.device import Device
from repro.gpu.specs import default_spec
from repro.perfport.matrix import PerfParams, RoutePerf
from repro.workloads.babelstream import SUITE_ADAPTERS, execute_stream


def run_stream_via_route(route: Route,
                         params: PerfParams = PerfParams()) -> RoutePerf:
    """Time the five stream kernels through ``route``'s runtime chain.

    Failures (dead toolchains, chains the adapter cannot drive) are a
    *result*, not an error: the route scores efficiency 0 and carries
    the failure message, mirroring how the compatibility matrix records
    failing probes.
    """
    adapter_cls = SUITE_ADAPTERS.get(route.probe_suite)
    perf = RoutePerf(
        route_id=route.route_id, via=route.via,
        translated=route.is_translation, ok=False,
    )
    if adapter_cls is None:
        perf.error = f"no stream adapter for suite '{route.probe_suite}'"
        return perf
    device = Device(default_spec(route.vendor))
    adapter = adapter_cls(device, params.n,
                          runtime_factory=lambda: route.chain(device))
    try:
        result = execute_stream(adapter, params.reps, model=route.model.value,
                                via=route.via)
    except (ReproError, AttributeError, KeyError, TypeError,
            NotImplementedError) as exc:
        perf.error = f"{type(exc).__name__}: {exc}"
        return perf
    perf.ok = True
    perf.verified = result.verified
    perf.kernels_executed = result.kernels_executed
    perf.best_seconds = dict(result.best_seconds)
    return perf
