"""Drive the BabelStream kernels through one registry route.

The bridge between the route registry and the workload layer: a route's
``probe_suite`` names the API family it exposes (cuda_cpp, sycl_cpp,
openmp, ...), :data:`~repro.workloads.babelstream.SUITE_ADAPTERS` maps
that family to a stream adapter, and the route's :meth:`Route.chain`
becomes the adapter's injected ``runtime_factory`` — so a translated
route (hipify, SYCLomatic, acc2omp, GPUFORT) times the *translated*
pipeline, translator and all.

Each run gets a **fresh device**: the simulated clock is device state,
so sharing devices across runs would make timings depend on execution
order.  A fresh device per run is what makes the concurrent perf build
bit-identical at every worker count.
"""

from __future__ import annotations

from repro.analysis.dataflow import LaunchBounds
from repro.analysis.sanitizer import AnalysisOptions
from repro.core.routes import Route
from repro.errors import ReproError
from repro.gpu.device import Device
from repro.gpu.specs import default_spec
from repro.kernels import BLOCK
from repro.perfport.matrix import PerfParams, RoutePerf
from repro.workloads.babelstream import SUITE_ADAPTERS, execute_stream


def _sanitized_chain(route: Route, device: Device):
    """Build the route's chain with kernelsan armed on its compiles.

    Bounds are pinned to the stream launch shape (``block=256``) — the
    shared-tile reductions are specified for that geometry and would be
    flagged OOB under the sanitizer's worst-case 1024-thread default.
    The toolchain caches sanitized compiles, so a warm perf rerun lints
    for free.
    """
    rt = route.chain(device)
    base = getattr(rt, "_rt", rt)
    base.sanitize = True
    base.sanitize_options = AnalysisOptions(
        bounds=LaunchBounds.of(block=(BLOCK, 1, 1)))
    return rt, base


def run_stream_via_route(route: Route,
                         params: PerfParams = PerfParams()) -> RoutePerf:
    """Time the five stream kernels through ``route``'s runtime chain.

    Failures (dead toolchains, chains the adapter cannot drive) are a
    *result*, not an error: the route scores efficiency 0 and carries
    the failure message, mirroring how the compatibility matrix records
    failing probes.
    """
    adapter_cls = SUITE_ADAPTERS.get(route.probe_suite)
    perf = RoutePerf(
        route_id=route.route_id, via=route.via,
        translated=route.is_translation, ok=False,
    )
    if adapter_cls is None:
        perf.error = f"no stream adapter for suite '{route.probe_suite}'"
        return perf
    device = Device(default_spec(route.vendor))
    bases: list = []

    def make_runtime():
        rt, base = _sanitized_chain(route, device)
        bases.append(base)
        return rt

    adapter = adapter_cls(device, params.n, runtime_factory=make_runtime)
    try:
        result = execute_stream(adapter, params.reps, model=route.model.value,
                                via=route.via)
    except (ReproError, AttributeError, KeyError, TypeError,
            NotImplementedError) as exc:
        perf.error = f"{type(exc).__name__}: {exc}"
        _fold_lint(perf, bases)
        return perf
    perf.ok = True
    perf.verified = result.verified
    perf.kernels_executed = result.kernels_executed
    perf.best_seconds = dict(result.best_seconds)
    _fold_lint(perf, bases)
    return perf


def _fold_lint(perf: RoutePerf, bases: list) -> None:
    """Roll the chain's accumulated LintReports into the route result."""
    for base in bases:
        for report in base.lint_reports:
            perf.lint_errors += len(report.errors)
            perf.lint_warnings += len(report.warnings)
