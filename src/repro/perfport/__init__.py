"""Performance-portability evaluation over the compatibility matrix.

The §5 extension the paper names as future work: run the five
BabelStream kernels through **every viable route** of every Figure-1
cell — translated routes included — and reduce the simulated GB/s into
per-cell efficiencies, per-model cascades, and the Pennycook ⫫ metric
over the three-vendor platform set.

Entry points:

* :func:`run_perf_matrix` — build (or reload) everything concurrently;
* :func:`build_perf_matrix` — the sequential reference loop;
* :func:`portability_report` — cascades + ⫫ per (model, language).
"""

from repro.perfport.matrix import (
    DEFAULT_N,
    DEFAULT_REPS,
    PerfCell,
    PerfMatrix,
    PerfParams,
    RoutePerf,
    build_perf_matrix,
    viable_routes,
)
from repro.perfport.portability import (
    CascadeEntry,
    PortabilityRow,
    cascade,
    pennycook_metric,
    portability_report,
)
from repro.perfport.scheduler import (
    PerfBuildReport,
    PerfJobKind,
    PerfScheduler,
    run_perf_matrix,
)
from repro.perfport.store import PerfStore, perf_fingerprint
from repro.perfport.stream import run_stream_via_route

__all__ = [
    "DEFAULT_N",
    "DEFAULT_REPS",
    "CascadeEntry",
    "PerfBuildReport",
    "PerfCell",
    "PerfJobKind",
    "PerfMatrix",
    "PerfParams",
    "PerfScheduler",
    "PerfStore",
    "PortabilityRow",
    "RoutePerf",
    "build_perf_matrix",
    "cascade",
    "pennycook_metric",
    "perf_fingerprint",
    "portability_report",
    "run_perf_matrix",
    "run_stream_via_route",
    "viable_routes",
]
