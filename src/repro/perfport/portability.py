"""Efficiency cascades and the Pennycook performance-portability metric.

The reductions of the perf matrix that the paper's §5 (and Reguly's
SYCL study) frame as the interesting outputs:

* **cascade** — for one (model, language), the per-vendor efficiencies
  sorted from best to worst.  The *shape* of the cascade is the
  portability story: a flat cascade is a portable model, a cliff is a
  single-vendor one.
* **⫫ (Pennycook et al.)** — the harmonic mean of the efficiencies over
  the platform set H, **defined as 0 when any platform is unsupported**:

      ⫫(a, H) = |H| / Σ_{i∈H} 1/e_i   if e_i > 0 for all i, else 0

  Here H is always the three-vendor flagship set, e_i the cell's
  achieved-fraction-of-peak via its best viable route.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enums import MODEL_LANGUAGES, MODEL_ORDER, VENDOR_ORDER, Language, Model, Vendor
from repro.perfport.matrix import PerfMatrix


@dataclass(frozen=True)
class CascadeEntry:
    vendor: Vendor
    efficiency: float
    route_id: str | None  # best route, None when unsupported


@dataclass(frozen=True)
class PortabilityRow:
    """One (model, language) row of the portability report."""

    model: Model
    language: Language
    cascade: tuple[CascadeEntry, ...]  # best-to-worst vendor efficiencies
    metric: float  # ⫫ over the three-vendor platform set

    @property
    def supported_everywhere(self) -> bool:
        return all(e.efficiency > 0 for e in self.cascade)


def pennycook_metric(efficiencies: list[float]) -> float:
    """⫫ over one platform set: harmonic mean, 0 if any platform is 0."""
    if not efficiencies or any(e <= 0 for e in efficiencies):
        return 0.0
    return len(efficiencies) / sum(1.0 / e for e in efficiencies)


def cascade(matrix: PerfMatrix, model: Model,
            language: Language) -> tuple[CascadeEntry, ...]:
    """Per-vendor efficiencies for one (model, language), best first.

    Ties break on the fixed ``VENDOR_ORDER`` so the output is
    deterministic.
    """
    entries = []
    for vendor in VENDOR_ORDER:
        cell = matrix.cells[(vendor, model, language)]
        best = cell.best_route(matrix.params)
        entries.append(CascadeEntry(
            vendor=vendor,
            efficiency=cell.efficiency(matrix.params),
            route_id=best.route_id if best else None,
        ))
    entries.sort(key=lambda e: -e.efficiency)
    return tuple(entries)


def portability_report(matrix: PerfMatrix) -> list[PortabilityRow]:
    """⫫ + cascade for every (model, language) of the Figure-1 grid."""
    rows: list[PortabilityRow] = []
    for model in MODEL_ORDER:
        for language in MODEL_LANGUAGES[model]:
            casc = cascade(matrix, model, language)
            rows.append(PortabilityRow(
                model=model, language=language, cascade=casc,
                metric=pennycook_metric([e.efficiency for e in casc]),
            ))
    return rows
