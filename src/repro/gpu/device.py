"""The simulated GPU device.

A :class:`Device` owns memory, streams, and a perf model, and — the part
the compatibility matrix hinges on — **only loads binaries in its native
ISA**.  Handing a PTX module to a simulated MI250X raises
:class:`~repro.errors.InvalidBinaryError`, exactly the gate that makes
"model X is (un)supported on vendor Y" an executable fact rather than a
table entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidBinaryError, LaunchError
from repro.gpu.memory import Allocation, DeviceMemory
from repro.gpu.perfmodel import LaunchTiming, PerfModel
from repro.gpu.specs import DeviceSpec
from repro.gpu.stream import Event, Stream
from repro.isa.interpreter import KernelExecutor, LaunchStats
from repro.isa.module import TargetModule

#: Host RAM reserved per simulated device by default.  The simulated
#: capacity (spec.memory_bytes) is what allocation limits advertise; the
#: backing arena is what we can actually address.
DEFAULT_BACKING_BYTES = 96 * 1024 * 1024


@dataclass
class DeviceCounters:
    """Cumulative activity counters (exposed for tests and reports)."""

    launches: int = 0
    h2d_copies: int = 0
    d2h_copies: int = 0
    d2d_copies: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    modules_loaded: int = 0
    stats: LaunchStats = field(default_factory=LaunchStats)


class Device:
    """One simulated GPU."""

    def __init__(self, spec: DeviceSpec, backing_bytes: int = DEFAULT_BACKING_BYTES,
                 device_id: int = 0, bandwidth_only_model: bool = False,
                 max_blocks_per_batch: int | None = None,
                 trace_mode: bool | None = None):
        self.spec = spec
        self.device_id = device_id
        #: Optional cap on interpreter blocks per batch; ``1`` forces the
        #: historical block-isolated execution (differential testing).
        self.max_blocks_per_batch = max_blocks_per_batch
        #: Trace-compiler knob forwarded to every executor: ``True``/
        #: ``False`` force it, ``None`` defers to the process default
        #: (``repro.isa.tracing.default_trace_mode``).
        self.trace_mode = trace_mode
        self.memory = DeviceMemory(backing_bytes, simulated_bytes=spec.memory_bytes)
        self.perf = PerfModel(spec, bandwidth_only=bandwidth_only_model)
        self.default_stream = Stream(self, default=True)
        self.streams: list[Stream] = [self.default_stream]
        self.counters = DeviceCounters()
        self.tracer = None  # optional repro.gpu.trace.Tracer
        self.now_s: float = 0.0  # simulated host-visible time
        self._modules: dict[str, TargetModule] = {}
        self._executors: dict[tuple[int, str], KernelExecutor] = {}

    # -- identity ---------------------------------------------------------------

    @property
    def vendor(self):
        return self.spec.vendor

    @property
    def isa(self):
        return self.spec.isa

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Device {self.spec.name} ({self.spec.vendor.value}, {self.isa.value})>"

    # -- memory -------------------------------------------------------------

    def alloc(self, nbytes: int) -> Allocation:
        if nbytes > self.spec.memory_bytes:
            raise LaunchError(
                f"allocation of {nbytes} B exceeds simulated capacity "
                f"{self.spec.memory_bytes} B of {self.spec.name}"
            )
        return self.memory.alloc(nbytes)

    def alloc_like(self, host: np.ndarray) -> Allocation:
        return self.alloc(host.nbytes)

    def free(self, allocation: Allocation | int) -> None:
        self.memory.free(allocation)

    def memcpy_h2d(self, dst: Allocation | int, host: np.ndarray,
                   stream: Stream | None = None) -> None:
        self.memory.upload(dst, host)
        s = stream or self.default_stream
        s.push(self.perf.time_transfer(host.nbytes),
               label=f"H2D {host.nbytes}B", category="memcpy")
        self.counters.h2d_copies += 1
        self.counters.bytes_h2d += host.nbytes

    def memcpy_d2h(self, src: Allocation | int, dtype: np.dtype, count: int,
                   stream: Stream | None = None) -> np.ndarray:
        dtype = np.dtype(dtype)
        out = self.memory.download(src, dtype, count)
        s = stream or self.default_stream
        s.push(self.perf.time_transfer(out.nbytes),
               label=f"D2H {out.nbytes}B", category="memcpy")
        self.counters.d2h_copies += 1
        self.counters.bytes_d2h += out.nbytes
        return out

    def memcpy_d2d(self, dst: Allocation | int, src: Allocation | int,
                   nbytes: int, stream: Stream | None = None) -> None:
        self.memory.copy_within(dst, src, nbytes)
        s = stream or self.default_stream
        s.push(nbytes / (self.spec.bandwidth_gbs * 1e9 / 2),  # read+write
               label=f"D2D {nbytes}B", category="memcpy")
        self.counters.d2d_copies += 1

    # -- modules and launches -----------------------------------------------

    def load_module(self, binary: TargetModule) -> TargetModule:
        """Load a compiled module; refuses foreign ISAs."""
        if binary.isa != self.isa:
            raise InvalidBinaryError(
                f"{self.spec.name} ({self.isa.value}) cannot load a "
                f"{binary.isa.value} binary (produced by {binary.producer})"
            )
        self._modules[binary.name] = binary
        self.counters.modules_loaded += 1
        return binary

    def create_stream(self) -> Stream:
        s = Stream(self)
        self.streams.append(s)
        return s

    def create_event(self) -> Event:
        return Event(self)

    def launch(self, binary: TargetModule, kernel_name: str,
               grid, block, args, stream: Stream | None = None) -> LaunchTiming:
        """Execute a kernel and advance the stream's simulated timeline.

        ``args`` may contain :class:`Allocation` objects (converted to
        byte addresses) and Python scalars.
        """
        if binary.name not in self._modules:
            self.load_module(binary)
        if kernel_name not in binary:
            raise LaunchError(f"module '{binary.name}' has no kernel '{kernel_name}'")

        key = (id(binary), kernel_name, self.trace_mode)
        executor = self._executors.get(key)
        if executor is None:
            executor = KernelExecutor(
                binary.kernel(kernel_name),
                warp_size=binary.warp_size,
                global_memory=self.memory.buffer,
                validator=self.memory.validate,
                shared_limit=self.spec.shared_per_block,
                max_block_threads=self.spec.max_threads_per_block,
                max_blocks_per_batch=self.max_blocks_per_batch,
                trace_mode=self.trace_mode,
            )
            self._executors[key] = executor

        resolved = [int(a) if isinstance(a, Allocation) else a for a in args]
        stats = executor.launch(grid, block, resolved)
        timing = self.perf.time_launch(stats)
        s = stream or self.default_stream
        s.push(timing.seconds, label=kernel_name, category="kernel")
        self.counters.launches += 1
        self.counters.stats.merge(stats)
        return timing

    # -- synchronization ---------------------------------------------------

    def advance_host(self, t: float) -> None:
        self.now_s = max(self.now_s, t)

    def synchronize(self) -> float:
        """Drain every stream (cudaDeviceSynchronize analog)."""
        for s in self.streams:
            if not s.destroyed:
                self.advance_host(s.tail_s)
        return self.now_s
