"""Simulated HPC GPU devices for the three vendors.

* :mod:`repro.gpu.specs` — device spec catalog (A100/H100, MI100/MI250X,
  Ponte Vecchio) with the public bandwidth/FLOP figures.
* :mod:`repro.gpu.memory` — byte-addressable device memory with a
  first-fit allocator and vectorized bounds/liveness checking.
* :mod:`repro.gpu.perfmodel` — roofline timing model that converts the
  interpreter's work counters into simulated seconds.
* :mod:`repro.gpu.stream` — streams and events on a simulated timeline.
* :mod:`repro.gpu.device` — the device object: loads ISA-checked
  binaries, launches kernels, moves data.
* :mod:`repro.gpu.runtime` — the simulated "machine": one device per
  vendor, discovery helpers used by every programming model runtime.
"""

from repro.gpu.specs import DeviceSpec, SPEC_CATALOG, default_spec  # noqa: F401
from repro.gpu.memory import Allocation, DeviceMemory  # noqa: F401
from repro.gpu.perfmodel import PerfModel, LaunchTiming  # noqa: F401
from repro.gpu.stream import Event, Stream  # noqa: F401
from repro.gpu.device import Device  # noqa: F401
from repro.gpu.runtime import System, default_system, get_device, reset_system  # noqa: F401
