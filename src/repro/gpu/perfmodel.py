"""Roofline timing model for simulated launches.

Converts the interpreter's metered work (:class:`~repro.isa.interpreter.
LaunchStats`) into simulated wall time on a given
:class:`~repro.gpu.specs.DeviceSpec`.  The model is the classic roofline
with three ceilings plus fixed launch latency:

``t = overhead + max(t_mem, t_flop, t_issue) / occupancy``

* ``t_mem``   — bytes moved at a fraction of peak HBM bandwidth
  (STREAM-class kernels reach 85-95 % of peak on all three vendors;
  we use 0.88).
* ``t_flop``  — FP64 flops at peak vector rate.
* ``t_issue`` — instruction-issue bound: total executed lane-level
  instructions over ``compute_units × simd_lanes × clock``.
* ``occupancy`` — launches smaller than the device's resident-thread
  capacity cannot saturate it; scales linearly below capacity.

Absolute numbers are *simulated*; what the benchmarks rely on is the
shape: per-vendor bandwidth ordering for BabelStream, crossovers between
compute- and memory-bound kernels, and launch-latency domination for
tiny kernels.  The ablation bench compares this model against a
bandwidth-only variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import DeviceSpec
from repro.isa.interpreter import LaunchStats

#: Fraction of datasheet bandwidth achievable by streaming kernels.
STREAM_EFFICIENCY = 0.88
#: Effective bandwidth penalty applied per atomic operation (bytes of
#: serialized traffic each atomic is charged, beyond its load/store).
ATOMIC_PENALTY_BYTES = 64


def perf_constants() -> dict[str, float]:
    """The model constants a simulated timing depends on.

    Folded into the perf-store fingerprint: changing either constant
    changes every simulated GB/s figure, so stored perf cells must be
    invalidated with them.
    """
    return {
        "stream_efficiency": STREAM_EFFICIENCY,
        "atomic_penalty_bytes": ATOMIC_PENALTY_BYTES,
    }


@dataclass(frozen=True)
class LaunchTiming:
    """Simulated timing breakdown of one launch."""

    seconds: float
    overhead_s: float
    mem_s: float
    flop_s: float
    issue_s: float
    occupancy: float
    bound: str  # "memory" | "compute" | "issue" | "latency"


class PerfModel:
    """Timing model bound to one device spec."""

    def __init__(self, spec: DeviceSpec, bandwidth_only: bool = False):
        self.spec = spec
        self.bandwidth_only = bandwidth_only

    def time_launch(self, stats: LaunchStats) -> LaunchTiming:
        """Simulated execution time for a metered launch."""
        spec = self.spec
        eff_bw = spec.bandwidth_gbs * 1e9 * STREAM_EFFICIENCY
        traffic = stats.bytes_moved + stats.atomic_ops * ATOMIC_PENALTY_BYTES
        t_mem = traffic / eff_bw
        t_flop = stats.flops / (spec.fp64_gflops * 1e9)
        # stats.instructions counts per-lane executions, so the issue
        # ceiling is lane-instructions/s: CUs x SIMT lanes x clock.
        t_issue = stats.instructions / (
            spec.compute_units * spec.simd_lanes_per_cu * spec.clock_ghz * 1e9
        )
        occupancy = min(1.0, stats.threads / spec.max_resident_threads) or 1e-9

        overhead = spec.launch_overhead_us * 1e-6
        if self.bandwidth_only:
            body = t_mem
            bound = "memory"
        else:
            body = max(t_mem, t_flop, t_issue) / occupancy
            bound = max(
                (t_mem, "memory"), (t_flop, "compute"), (t_issue, "issue")
            )[1]
        total = overhead + body
        if overhead > body:
            bound = "latency"
        return LaunchTiming(
            seconds=total,
            overhead_s=overhead,
            mem_s=t_mem,
            flop_s=t_flop,
            issue_s=t_issue,
            occupancy=occupancy,
            bound=bound,
        )

    def time_transfer(self, nbytes: int, peer_to_peer: bool = False) -> float:
        """Simulated host<->device (or device<->device) copy time."""
        bw = self.spec.interconnect_gbs * 1e9
        if peer_to_peer:
            bw *= 2.0
        latency = 10e-6  # DMA setup
        return latency + nbytes / bw

    def achieved_bandwidth(self, stats: LaunchStats, seconds: float) -> float:
        """GB/s implied by a launch's traffic and simulated time."""
        if seconds <= 0:
            return 0.0
        return stats.bytes_moved / seconds / 1e9
