"""Timeline tracing of simulated device activity (nsys/rocprof-style).

Attach a :class:`Tracer` to a device and every stream operation (kernel
launch, copy) is recorded with its simulated start/end time, stream, and
label.  The trace exports to the Chrome ``chrome://tracing`` /
Perfetto JSON format, so simulated timelines can be inspected with the
same tooling real GPU profiles use.

Usage::

    device = get_device(Vendor.NVIDIA)
    tracer = attach_tracer(device)
    ... run kernels ...
    tracer.save("timeline.json")
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device


@dataclass(frozen=True)
class TraceEvent:
    """One completed operation on a stream timeline."""

    name: str
    category: str  # "kernel" | "memcpy" | "op"
    stream_id: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class Tracer:
    """Collects events from one device."""

    device_name: str
    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, name: str, category: str, stream_id: int,
               start_s: float, end_s: float) -> None:
        if self.enabled:
            self.events.append(
                TraceEvent(name, category, stream_id, start_s, end_s)
            )

    # -- queries ---------------------------------------------------------------

    def kernels(self) -> list[TraceEvent]:
        return [e for e in self.events if e.category == "kernel"]

    def copies(self) -> list[TraceEvent]:
        return [e for e in self.events if e.category == "memcpy"]

    def busy_time(self, stream_id: int | None = None) -> float:
        """Total busy seconds (per stream, or across all streams)."""
        return sum(
            e.duration_s for e in self.events
            if stream_id is None or e.stream_id == stream_id
        )

    def span(self) -> float:
        """Wall span from first start to last end."""
        if not self.events:
            return 0.0
        return (max(e.end_s for e in self.events)
                - min(e.start_s for e in self.events))

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self) -> str:
        """Serialize to the Chrome tracing JSON format (µs timestamps)."""
        records = [
            {
                "name": e.name,
                "cat": e.category,
                "ph": "X",  # complete event
                "ts": e.start_s * 1e6,
                "dur": e.duration_s * 1e6,
                "pid": self.device_name,
                "tid": f"stream {e.stream_id}",
            }
            for e in self.events
        ]
        return json.dumps({"traceEvents": records,
                           "displayTimeUnit": "ns"}, indent=1)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_chrome_trace())


def attach_tracer(device: "Device") -> Tracer:
    """Attach (or return the existing) tracer of a device."""
    if getattr(device, "tracer", None) is None:
        device.tracer = Tracer(device_name=device.spec.name)
    return device.tracer


def detach_tracer(device: "Device") -> Tracer | None:
    """Remove and return the device's tracer."""
    tracer = getattr(device, "tracer", None)
    device.tracer = None
    return tracer
