"""The simulated machine: device discovery and the default system.

Every programming-model runtime asks this module for devices, the way
real runtimes enumerate GPUs through the driver.  The default system has
one flagship device per vendor (H100, MI250X GCD, Ponte Vecchio) —
"JUPITER, Frontier, and Aurora in one chassis" — which is what the
compatibility probes and the BabelStream sweep run against.
"""

from __future__ import annotations

from repro.enums import Vendor
from repro.errors import ApiError
from repro.gpu.device import DEFAULT_BACKING_BYTES, Device
from repro.gpu.specs import SPEC_CATALOG, default_spec


class System:
    """A collection of simulated devices, indexable by vendor or id."""

    def __init__(self, devices: list[Device]):
        if not devices:
            raise ApiError("a simulated system needs at least one device")
        self.devices = devices
        for i, d in enumerate(devices):
            d.device_id = i

    @classmethod
    def default(cls, backing_bytes: int = DEFAULT_BACKING_BYTES) -> "System":
        """One flagship device per vendor."""
        return cls(
            [
                Device(default_spec(v), backing_bytes=backing_bytes)
                for v in (Vendor.AMD, Vendor.INTEL, Vendor.NVIDIA)
            ]
        )

    @classmethod
    def of(cls, *names: str, backing_bytes: int = DEFAULT_BACKING_BYTES) -> "System":
        """Build a system from spec-catalog names (e.g. two MI250X GCDs)."""
        return cls([Device(SPEC_CATALOG[n], backing_bytes=backing_bytes) for n in names])

    def device(self, selector: Vendor | int) -> Device:
        """Select a device by vendor (first match) or ordinal id."""
        if isinstance(selector, Vendor):
            for d in self.devices:
                if d.vendor is selector:
                    return d
            raise ApiError(f"no {selector.value} device in this system")
        try:
            return self.devices[selector]
        except IndexError:
            raise ApiError(
                f"device id {selector} out of range ({len(self.devices)} devices)"
            ) from None

    def by_vendor(self, vendor: Vendor) -> list[Device]:
        return [d for d in self.devices if d.vendor is vendor]

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(self.devices)


_default_system: System | None = None


def default_system() -> System:
    """Process-wide default system (lazily created)."""
    global _default_system
    if _default_system is None:
        _default_system = System.default()
    return _default_system


def get_device(vendor: Vendor) -> Device:
    """Default system's device for a vendor."""
    return default_system().device(vendor)


def reset_system() -> None:
    """Discard the default system (test isolation)."""
    global _default_system
    _default_system = None
