"""Streams and events on a simulated timeline.

Work submitted to a stream executes in FIFO order; distinct streams may
overlap.  Because the interpreter runs work eagerly (host-side), the
"timeline" is bookkeeping: each stream tracks the simulated time at
which its last enqueued operation completes, events capture those times,
and cross-stream waits propagate them — enough to reproduce the
synchronization *semantics* (and the simulated-time consequences of
overlap) that the CUDA/HIP/SYCL models expose to users.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.errors import StreamError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device

_ids = itertools.count(1)


class Event:
    """A marker on a stream's timeline (cudaEvent/hipEvent analog)."""

    def __init__(self, device: "Device"):
        self.device = device
        self.event_id = next(_ids)
        self.recorded = False
        self.time_s: float = 0.0

    def elapsed_since(self, earlier: "Event") -> float:
        """Seconds between two recorded events (cudaEventElapsedTime)."""
        if not (self.recorded and earlier.recorded):
            raise StreamError("elapsed time of unrecorded event(s)")
        return self.time_s - earlier.time_s


class Stream:
    """An in-order work queue on one device."""

    def __init__(self, device: "Device", default: bool = False):
        self.device = device
        self.stream_id = 0 if default else next(_ids)
        self.default = default
        self.tail_s: float = 0.0  # completion time of last enqueued op
        self.ops_enqueued = 0
        self.destroyed = False

    # -- timeline -------------------------------------------------------------

    def push(self, duration_s: float, start_not_before: float = 0.0,
             label: str | None = None, category: str = "op") -> float:
        """Enqueue an operation; returns its simulated completion time."""
        if self.destroyed:
            raise StreamError("operation on destroyed stream")
        start = max(self.tail_s, start_not_before, self.device.now_s)
        self.tail_s = start + duration_s
        self.ops_enqueued += 1
        tracer = getattr(self.device, "tracer", None)
        if tracer is not None:
            tracer.record(label or "op", category, self.stream_id,
                          start, self.tail_s)
        return self.tail_s

    # -- synchronization ---------------------------------------------------

    def record(self, event: Event) -> Event:
        if event.device is not self.device:
            raise StreamError("event recorded on a foreign device's stream")
        event.recorded = True
        event.time_s = self.tail_s
        return event

    def wait_event(self, event: Event) -> None:
        """Future work on this stream starts after ``event`` (cross-stream)."""
        if not event.recorded:
            raise StreamError("wait on unrecorded event")
        if event.device is not self.device:
            raise StreamError("cross-device event wait is not supported")
        self.tail_s = max(self.tail_s, event.time_s)

    def synchronize(self) -> float:
        """Block the (simulated) host until the stream drains."""
        self.device.advance_host(self.tail_s)
        return self.tail_s

    def destroy(self) -> None:
        if self.default:
            raise StreamError("cannot destroy the default stream")
        self.destroyed = True
