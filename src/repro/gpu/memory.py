"""Byte-addressable device memory with allocation tracking.

The backing store is one flat ``uint8`` NumPy array (so typed views are
zero-copy, per the guides' views-not-copies rule).  The allocator is a
first-fit free-list; every load/store from the interpreter is validated
against the live allocations with a vectorized ``searchsorted`` check,
which is what turns stray kernel addressing into a
:class:`~repro.errors.MemoryFaultError` instead of silent corruption.

The *simulated* capacity (the device's advertised HBM size) is decoupled
from the *backing* capacity (how much host RAM we actually reserve), so
an 80 GB H100 can be simulated with a 64 MB arena while out-of-memory
behaviour still triggers at the backing limit.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import AllocationError, MemoryFaultError

_ALIGN = 256  # allocation granularity/alignment, like cudaMalloc


@dataclass(frozen=True)
class Allocation:
    """A live device allocation; behaves as its base address in math."""

    addr: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.addr + self.nbytes

    def __index__(self) -> int:  # lets Allocation flow into address math
        return self.addr

    def __int__(self) -> int:
        return self.addr


class DeviceMemory:
    """Global memory of one simulated device."""

    def __init__(self, backing_bytes: int, simulated_bytes: int | None = None):
        backing_bytes = (backing_bytes + 7) // 8 * 8
        self.buffer = np.zeros(backing_bytes, dtype=np.uint8)
        self.simulated_bytes = simulated_bytes or backing_bytes
        # Free list as sorted, non-adjacent [start, end) intervals.
        self._free: list[tuple[int, int]] = [(0, backing_bytes)]
        self._live: dict[int, Allocation] = {}
        # Sorted views of live allocations for vectorized validation;
        # rebuilt lazily after alloc/free.
        self._starts: np.ndarray | None = None
        self._ends: np.ndarray | None = None
        self.bytes_in_use = 0
        self.peak_bytes = 0
        self.n_allocs = 0

    # -- allocation ----------------------------------------------------------

    def alloc(self, nbytes: int) -> Allocation:
        """Allocate ``nbytes`` (rounded to 256-byte granules), first fit."""
        if nbytes <= 0:
            raise AllocationError(f"invalid allocation size {nbytes}")
        size = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        for i, (start, end) in enumerate(self._free):
            if end - start >= size:
                if end - start == size:
                    del self._free[i]
                else:
                    self._free[i] = (start + size, end)
                allocation = Allocation(start, nbytes)
                self._live[start] = allocation
                self._starts = self._ends = None
                self.bytes_in_use += size
                self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
                self.n_allocs += 1
                # Fresh allocations are zeroed so runs are reproducible.
                self.buffer[start:start + size] = 0
                return allocation
        raise AllocationError(
            f"out of device memory: requested {nbytes} B, "
            f"{self.buffer.size - self.bytes_in_use} B free of {self.buffer.size} B backing"
        )

    def free(self, allocation: Allocation | int) -> None:
        addr = int(allocation)
        live = self._live.pop(addr, None)
        if live is None:
            raise MemoryFaultError(f"free of unknown/already-freed address {addr:#x}")
        size = (live.nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        self.bytes_in_use -= size
        self._starts = self._ends = None
        # Insert and coalesce with neighbours.
        interval = (addr, addr + size)
        idx = bisect.bisect_left(self._free, interval)
        self._free.insert(idx, interval)
        merged: list[tuple[int, int]] = []
        for start, end in self._free:
            if merged and start == merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
            else:
                merged.append((start, end))
        self._free = merged

    def owns(self, addr: int) -> bool:
        return int(addr) in self._live

    # -- validated access (interpreter hook) -----------------------------------

    def _tables(self) -> tuple[np.ndarray, np.ndarray]:
        if self._starts is None:
            if self._live:
                allocs = sorted(self._live.values(), key=lambda a: a.addr)
                self._starts = np.array([a.addr for a in allocs], dtype=np.int64)
                self._ends = np.array([a.end for a in allocs], dtype=np.int64)
            else:
                self._starts = np.empty(0, dtype=np.int64)
                self._ends = np.empty(0, dtype=np.int64)
        return self._starts, self._ends

    def validate(self, addrs: np.ndarray, itemsize: int, write: bool) -> None:
        """Interpreter hook: every address must fall in a live allocation."""
        if addrs.size == 0:
            return
        starts, ends = self._tables()
        a = addrs.astype(np.int64, copy=False)
        if starts.size == 0:
            raise MemoryFaultError("device access with no live allocations")
        slot = np.searchsorted(starts, a, side="right") - 1
        bad = (slot < 0) | (a + itemsize > ends[np.maximum(slot, 0)])
        if bad.any():
            offender = int(a[bad][0])
            kind = "write" if write else "read"
            raise MemoryFaultError(
                f"out-of-bounds device {kind} of {itemsize} B at {offender:#x} "
                f"({int(bad.sum())} faulting lanes)"
            )

    def validate_contig(self, lo: int, count: int, itemsize: int) -> bool:
        """Would :meth:`validate` accept the contiguous element run
        ``lo, lo+itemsize, ..., lo+(count-1)*itemsize``?

        Decides legality without building the address array — the trace
        compiler's fast paths call this once per batch instead of
        validating per lane.  Walks the (sorted, possibly abutting) live
        allocations: each step advances to the last element that still
        fits the current allocation, so the cost is O(spanned
        allocations), not O(count).  Never raises; ``False`` sends the
        access down the generic per-lane path (which reproduces the
        exact fault).
        """
        starts, ends = self._tables()
        if starts.size == 0:
            return False
        a = int(lo)
        last = a + (count - 1) * itemsize
        while True:
            slot = int(np.searchsorted(starts, a, side="right")) - 1
            if slot < 0:
                return False
            end = int(ends[slot])
            if a + itemsize > end:
                return False
            if last + itemsize <= end:
                return True
            a += ((end - a) // itemsize) * itemsize

    # -- host <-> device data movement ---------------------------------------

    def upload(self, allocation: Allocation | int, host: np.ndarray,
               byte_offset: int = 0) -> None:
        """Copy a host array into device memory at ``allocation+offset``."""
        addr = int(allocation) + byte_offset
        data = np.ascontiguousarray(host)
        raw = data.view(np.uint8).reshape(-1)
        self._check_range(addr, raw.size, "upload")
        self.buffer[addr:addr + raw.size] = raw

    def download(self, allocation: Allocation | int, dtype: np.dtype,
                 count: int, byte_offset: int = 0) -> np.ndarray:
        """Copy ``count`` elements of ``dtype`` out to a fresh host array."""
        dtype = np.dtype(dtype)
        addr = int(allocation) + byte_offset
        nbytes = dtype.itemsize * count
        self._check_range(addr, nbytes, "download")
        return self.buffer[addr:addr + nbytes].view(dtype).copy()

    def view(self, allocation: Allocation | int, dtype: np.dtype,
             count: int, byte_offset: int = 0) -> np.ndarray:
        """Zero-copy typed view of device memory (host-mapped access)."""
        dtype = np.dtype(dtype)
        addr = int(allocation) + byte_offset
        nbytes = dtype.itemsize * count
        self._check_range(addr, nbytes, "view")
        if addr % dtype.itemsize:
            raise MemoryFaultError(f"misaligned {dtype} view at {addr:#x}")
        return self.buffer[addr:addr + nbytes].view(dtype)

    def copy_within(self, dst: Allocation | int, src: Allocation | int,
                    nbytes: int) -> None:
        """Device-to-device copy."""
        d, s = int(dst), int(src)
        self._check_range(d, nbytes, "copy dst")
        self._check_range(s, nbytes, "copy src")
        self.buffer[d:d + nbytes] = self.buffer[s:s + nbytes]

    def _check_range(self, addr: int, nbytes: int, what: str) -> None:
        if nbytes == 0:
            return
        starts, ends = self._tables()
        if starts.size:
            slot = int(np.searchsorted(starts, addr, side="right")) - 1
            if slot >= 0 and addr + nbytes <= ends[slot]:
                return
        raise MemoryFaultError(
            f"{what} of {nbytes} B at {addr:#x} is outside any live allocation"
        )
