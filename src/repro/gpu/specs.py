"""Device specification catalog.

Numbers are the public datasheet figures for the HPC GPUs named in the
paper's introduction: Frontier's MI250X (one GCD is the schedulable
device, as on Frontier itself), Aurora's Data Center GPU Max (Ponte
Vecchio), and NVIDIA's A100/H100 generation.  The perf model consumes
bandwidth/FLOP rates; the execution engine consumes the geometric limits
(threads per block, shared memory, execution width).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enums import ISA, Vendor


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one simulated GPU."""

    name: str
    vendor: Vendor
    isa: ISA
    compute_units: int  # SMs / CUs / Xe-cores
    warp_size: int  # warp / wavefront / sub-group width
    max_threads_per_block: int
    shared_per_block: int  # bytes of shared memory / LDS / SLM
    memory_bytes: int  # advertised HBM capacity
    bandwidth_gbs: float  # peak HBM bandwidth, GB/s
    fp64_gflops: float  # peak vector FP64, GFLOP/s
    fp32_gflops: float
    interconnect_gbs: float  # host link (PCIe/NVLink-C2C/Infinity)
    launch_overhead_us: float  # fixed kernel-launch latency
    clock_ghz: float
    simd_lanes_per_cu: int  # per-CU SIMT lane count (issue-rate model)

    @property
    def max_resident_threads(self) -> int:
        """Rough full-occupancy thread count (2048/CU class devices)."""
        return self.compute_units * 2048


SPEC_CATALOG: dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (
        DeviceSpec(
            name="A100-SXM4-80GB",
            vendor=Vendor.NVIDIA,
            isa=ISA.PTX,
            compute_units=108,
            warp_size=32,
            max_threads_per_block=1024,
            shared_per_block=164 * 1024,
            memory_bytes=80 * 1024**3,
            bandwidth_gbs=2039.0,
            fp64_gflops=9_700.0,
            fp32_gflops=19_500.0,
            interconnect_gbs=64.0,
            launch_overhead_us=4.0,
            clock_ghz=1.41,
            simd_lanes_per_cu=128,
        ),
        DeviceSpec(
            name="H100-SXM5",
            vendor=Vendor.NVIDIA,
            isa=ISA.PTX,
            compute_units=132,
            warp_size=32,
            max_threads_per_block=1024,
            shared_per_block=228 * 1024,
            memory_bytes=80 * 1024**3,
            bandwidth_gbs=3350.0,
            fp64_gflops=33_500.0,
            fp32_gflops=66_900.0,
            interconnect_gbs=128.0,
            launch_overhead_us=3.5,
            clock_ghz=1.83,
            simd_lanes_per_cu=128,
        ),
        DeviceSpec(
            name="MI100",
            vendor=Vendor.AMD,
            isa=ISA.AMDGCN,
            compute_units=120,
            warp_size=64,
            max_threads_per_block=1024,
            shared_per_block=64 * 1024,
            memory_bytes=32 * 1024**3,
            bandwidth_gbs=1228.8,
            fp64_gflops=11_500.0,
            fp32_gflops=23_100.0,
            interconnect_gbs=64.0,
            launch_overhead_us=5.0,
            clock_ghz=1.50,
            simd_lanes_per_cu=64,
        ),
        DeviceSpec(
            # One MI250X Graphics Compute Die: Frontier schedules per GCD.
            name="MI250X-GCD",
            vendor=Vendor.AMD,
            isa=ISA.AMDGCN,
            compute_units=110,
            warp_size=64,
            max_threads_per_block=1024,
            shared_per_block=64 * 1024,
            memory_bytes=64 * 1024**3,
            bandwidth_gbs=1638.0,
            fp64_gflops=23_950.0,
            fp32_gflops=23_950.0,
            interconnect_gbs=72.0,
            launch_overhead_us=5.0,
            clock_ghz=1.70,
            simd_lanes_per_cu=64,
        ),
        DeviceSpec(
            # El Capitan's APU (the intro's "next-generation AMD GPUs").
            name="MI300A",
            vendor=Vendor.AMD,
            isa=ISA.AMDGCN,
            compute_units=228,
            warp_size=64,
            max_threads_per_block=1024,
            shared_per_block=64 * 1024,
            memory_bytes=128 * 1024**3,
            bandwidth_gbs=5300.0,
            fp64_gflops=61_300.0,
            fp32_gflops=122_600.0,
            interconnect_gbs=128.0,  # unified memory APU fabric
            launch_overhead_us=4.0,
            clock_ghz=2.10,
            simd_lanes_per_cu=64,
        ),
        DeviceSpec(
            # Intel Data Center GPU Max 1550 (Ponte Vecchio), one OAM.
            name="DataCenterMax-1550",
            vendor=Vendor.INTEL,
            isa=ISA.SPIRV,
            compute_units=128,  # Xe-cores
            warp_size=16,
            max_threads_per_block=1024,
            shared_per_block=128 * 1024,
            memory_bytes=128 * 1024**3,
            bandwidth_gbs=3276.8,
            fp64_gflops=52_000.0,
            fp32_gflops=52_000.0,
            interconnect_gbs=64.0,
            launch_overhead_us=6.0,
            clock_ghz=1.60,
            simd_lanes_per_cu=128,
        ),
    )
}

#: Flagship device per vendor, used by the default simulated system:
#: the JUPITER/Frontier/Aurora-class parts the paper's introduction names.
DEFAULT_DEVICE: dict[Vendor, str] = {
    Vendor.NVIDIA: "H100-SXM5",
    Vendor.AMD: "MI250X-GCD",
    Vendor.INTEL: "DataCenterMax-1550",
}


def default_spec(vendor: Vendor) -> DeviceSpec:
    """The default simulated device for a vendor."""
    return SPEC_CATALOG[DEFAULT_DEVICE[vendor]]
