"""Differential execution: confirm static verdicts against real schedules.

The lockstep interpreter (:mod:`repro.isa.interpreter`) executes all
threads of a block in SIMD lockstep — one legal schedule.  This module
adds a second family of legal schedules: a *serial* interpreter that
runs one thread at a time, advancing every live thread to its next
barrier (or to completion) in a configurable order before starting the
next barrier phase.  Both scheduling disciplines respect the barrier
semantics of the IR, so:

* a **race-free** kernel must produce identical results under lockstep,
  serial-forward and serial-reverse execution;
* a kernel with a shared-memory race generally does not — which is the
  observable, interpreter-level ground truth the kernelsan race verdict
  is tested against.

Out-of-bounds findings are cross-validated the same way: the
interpreter's bounds checks (:class:`~repro.errors.MemoryFaultError`)
and divergence checks (:class:`~repro.errors.DivergentBarrierError`)
either fire or they don't, and the static verdict must agree.

The serial interpreter mirrors the lockstep one operationally: C-style
integer division, element-size-aligned shared allocation, zero-filled
shared memory, per-address atomic read-modify-write.  Cross-lane
shuffles are the one exclusion — they are warp-synchronous by
definition and have no serial equivalent — so kernels using them are
rejected here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import IRError, LaunchError, MemoryFaultError
from repro.isa import dtypes
from repro.isa.instructions import (
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Load,
    MemSpace,
    Mov,
    Operand,
    Register,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    Store,
    UnaryOp,
    While,
)
from repro.isa.interpreter import KernelExecutor
from repro.isa.module import KernelIR

_MAX_LOOP_TRIPS = 1_000_000


def _cast(dt: dtypes.DType, value):
    """Cast to a dtype with silent wraparound (matching the array path)."""
    return np.array(value).astype(dt.np_dtype)[()]


def _int_div(a, b):
    a, b = int(a), int(b)
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


class _SerialThread:
    """One GPU thread, run as a generator that yields at each barrier."""

    def __init__(self, executor: "SerialExecutor", tid: tuple[int, int, int],
                 ctaid: tuple[int, int, int], linear: int,
                 env: dict[str, object], shared: np.ndarray,
                 dims: dict[str, int]):
        self.x = executor
        self.tid = tid
        self.ctaid = ctaid
        self.linear = linear
        self.env = env
        self.shared = shared
        self.dims = dims
        self.exited = False
        self._shared_cursor = 0

    # -- operand access -----------------------------------------------------

    def read(self, op: Operand):
        if isinstance(op, Imm):
            return op.dtype.np_dtype.type(op.value)
        return self.env[op.name]

    def assign(self, reg: Register, value) -> None:
        self.env[reg.name] = _cast(reg.dtype, value)

    def special(self, which: str):
        if which.startswith("tid."):
            return np.uint32(self.tid["xyz".index(which[-1])])
        if which.startswith("ctaid."):
            return np.uint32(self.ctaid["xyz".index(which[-1])])
        if which == "laneid":
            return np.uint32(self.linear % self.x.warp_size)
        if which == "warpsize":
            return np.uint32(self.x.warp_size)
        return np.uint32(self.dims[which])

    # -- execution ----------------------------------------------------------

    def run(self) -> Iterator[None]:
        yield from self.exec_body(self.x.kernel.body)

    def exec_body(self, body) -> Iterator[None]:
        for instr in body:
            if self.exited:
                return
            if isinstance(instr, Barrier):
                yield
            elif isinstance(instr, If):
                cond = bool(self.read(instr.cond))
                yield from self.exec_body(
                    instr.then_body if cond else instr.else_body)
            elif isinstance(instr, While):
                trips = 0
                while True:
                    yield from self.exec_body(instr.cond_body)
                    if self.exited or not bool(self.read(instr.cond)):
                        break
                    yield from self.exec_body(instr.body)
                    trips += 1
                    if trips > _MAX_LOOP_TRIPS:
                        raise IRError(
                            f"kernel '{self.x.kernel.name}': runaway loop "
                            f"in serial execution")
            elif isinstance(instr, Exit):
                self.exited = True
                return
            else:
                self.step(instr)

    def step(self, instr) -> None:
        if isinstance(instr, Mov):
            self.assign(instr.dst, self.read(instr.src))
        elif isinstance(instr, BinOp):
            self.assign(instr.dst, self._binop(
                instr.op, self.read(instr.a), self.read(instr.b),
                instr.dst.dtype))
        elif isinstance(instr, UnaryOp):
            self.assign(instr.dst, self._unary(instr.op, self.read(instr.src)))
        elif isinstance(instr, Cmp):
            fn = {"eq": np.equal, "ne": np.not_equal, "lt": np.less,
                  "le": np.less_equal, "gt": np.greater,
                  "ge": np.greater_equal}[instr.op]
            self.env[instr.dst.name] = bool(
                fn(self.read(instr.a), self.read(instr.b)))
        elif isinstance(instr, Select):
            self.assign(instr.dst,
                        self.read(instr.a) if bool(self.read(instr.pred))
                        else self.read(instr.b))
        elif isinstance(instr, Cvt):
            self.assign(instr.dst, self.read(instr.src))
        elif isinstance(instr, SpecialRead):
            self.assign(instr.dst, self.special(instr.which))
        elif isinstance(instr, SharedAlloc):
            nbytes = instr.dtype.itemsize * instr.count
            align = instr.dtype.itemsize
            self._shared_cursor = -(-self._shared_cursor // align) * align
            base = self._shared_cursor
            self._shared_cursor += nbytes
            self.assign(instr.dst, np.uint64(base))
        elif isinstance(instr, Load):
            view, idx = self._resolve(instr, instr.dst.dtype)
            self.assign(instr.dst, view[idx])
        elif isinstance(instr, Store):
            dt = instr.src.dtype
            view, idx = self._resolve(instr, dt)
            view[idx] = _cast(dt, self.read(instr.src))
        elif isinstance(instr, AtomicOp):
            self._atomic(instr)
        elif isinstance(instr, Shuffle):
            raise LaunchError(
                "cross-lane shuffle has no serial-schedule equivalent")
        else:  # pragma: no cover - verifier prevents this
            raise IRError(f"unknown instruction {instr!r}")

    # -- helpers -------------------------------------------------------------

    def _binop(self, op: str, a, b, result: dtypes.DType):
        if op == "div" and not result.is_float:
            return _int_div(a, b)
        if op == "rem" and not result.is_float:
            return int(a) - _int_div(a, b) * (int(b) if int(b) else 1)
        table = {
            "add": np.add, "sub": np.subtract, "mul": np.multiply,
            "div": np.divide, "rem": np.mod,
            "min": np.minimum, "max": np.maximum, "pow": np.power,
            "shl": np.left_shift, "shr": np.right_shift,
        }
        if op in table:
            return table[op](a, b)
        if op in ("and", "or", "xor"):
            logical = {"and": np.logical_and, "or": np.logical_or,
                       "xor": np.logical_xor}
            bitwise = {"and": np.bitwise_and, "or": np.bitwise_or,
                       "xor": np.bitwise_xor}
            return (logical if result.is_pred else bitwise)[op](a, b)
        raise IRError(f"unknown binary op '{op}'")  # pragma: no cover

    def _unary(self, op: str, src):
        if op == "rsqrt":
            return 1.0 / np.sqrt(src)
        fns = {"neg": np.negative, "abs": np.abs, "sqrt": np.sqrt,
               "exp": np.exp, "log": np.log, "sin": np.sin, "cos": np.cos,
               "tanh": np.tanh, "floor": np.floor, "ceil": np.ceil,
               "round": np.rint, "not": np.logical_not,
               "bitnot": np.bitwise_not}
        return fns[op](src)

    def _resolve(self, instr, dtype: dtypes.DType):
        addr = int(self.read(instr.addr))
        if addr % dtype.itemsize:
            raise MemoryFaultError(
                f"kernel '{self.x.kernel.name}': misaligned "
                f"{dtype.name} access")
        if instr.space == MemSpace.GLOBAL:
            mem = self.x.gmem
            what = "global access out of device memory"
        else:
            mem = self.shared
            what = (f"kernel '{self.x.kernel.name}': shared access beyond "
                    f"{mem.size} allocated bytes")
        if addr + dtype.itemsize > mem.size:
            raise MemoryFaultError(what)
        usable = (mem.size // dtype.itemsize) * dtype.itemsize
        return mem[:usable].view(dtype.np_dtype), addr // dtype.itemsize

    def _atomic(self, instr: AtomicOp) -> None:
        dt = instr.src.dtype
        view, idx = self._resolve(instr, dt)
        src = _cast(dt, self.read(instr.src))
        old = view[idx].copy()
        if instr.op == "add":
            view[idx] = old + src
        elif instr.op == "min":
            view[idx] = min(old, src)
        elif instr.op == "max":
            view[idx] = max(old, src)
        elif instr.op == "exch":
            view[idx] = src
        elif instr.op == "cas":
            compare = _cast(dt, self.read(instr.compare))
            if old == compare:
                view[idx] = src
        if instr.dst is not None:
            self.assign(instr.dst, old)


class SerialExecutor:
    """One-thread-at-a-time executor with an explicit schedule order.

    Threads of each block advance in *barrier phases*: in every phase
    each live thread runs until its next barrier (or until it finishes),
    visited in ``order`` ("forward": ascending linear thread id,
    "reverse": descending).  Both are legal schedules of the barrier
    semantics, so any result difference against the lockstep interpreter
    is genuine nondeterminism in the kernel.
    """

    def __init__(self, kernel: KernelIR, warp_size: int,
                 global_memory: np.ndarray):
        if global_memory.dtype != np.uint8 or global_memory.ndim != 1:
            raise LaunchError("global memory must be a flat uint8 array")
        self.kernel = kernel
        self.warp_size = int(warp_size)
        self.gmem = global_memory

    def launch(self, grid: Sequence[int], block: Sequence[int],
               args: Sequence[object], order: str = "forward") -> None:
        if order not in ("forward", "reverse"):
            raise LaunchError(f"unknown schedule order '{order}'")
        grid = tuple(int(g) for g in grid) + (1,) * (3 - len(grid))
        block = tuple(int(b) for b in block) + (1,) * (3 - len(block))
        if any(g <= 0 for g in grid) or any(b <= 0 for b in block):
            raise LaunchError(
                f"non-positive launch configuration {grid}x{block}")
        if len(args) != len(self.kernel.params):
            raise LaunchError(
                f"kernel '{self.kernel.name}' takes "
                f"{len(self.kernel.params)} arguments, got {len(args)}")
        dims = {
            "ntid.x": block[0], "ntid.y": block[1], "ntid.z": block[2],
            "nctaid.x": grid[0], "nctaid.y": grid[1], "nctaid.z": grid[2],
        }
        with np.errstate(all="ignore"):
            for bz in range(grid[2]):
                for by in range(grid[1]):
                    for bx in range(grid[0]):
                        self._run_block((bx, by, bz), block, args, dims, order)

    def _run_block(self, ctaid, block, args, dims, order: str) -> None:
        shared = np.zeros(max(self.kernel.shared_bytes, 8), dtype=np.uint8)
        threads: list[_SerialThread] = []
        linear = 0
        for tz in range(block[2]):
            for ty in range(block[1]):
                for tx in range(block[0]):
                    env: dict[str, object] = {}
                    for param, value in zip(self.kernel.params, args):
                        dt = dtypes.U64 if param.is_pointer else param.dtype
                        env[param.name] = _cast(dt, value)
                    threads.append(_SerialThread(
                        self, (tx, ty, tz), ctaid, linear, env, shared, dims))
                    linear += 1
        gens = [t.run() for t in threads]
        alive = [True] * len(threads)
        while any(alive):
            sweep = range(len(threads))
            if order == "reverse":
                sweep = reversed(sweep)
            for i in sweep:
                if not alive[i]:
                    continue
                try:
                    next(gens[i])
                except StopIteration:
                    alive[i] = False


# ---------------------------------------------------------------------------
# Schedule comparison harness
# ---------------------------------------------------------------------------

#: Schedules compared by default: the lockstep interpreter plus the two
#: serial orders.
DEFAULT_SCHEDULES = ("lockstep", "serial-forward", "serial-reverse")


@dataclass
class ScheduleComparison:
    """Outcome of running one kernel under several legal schedules."""

    schedules: tuple[str, ...]
    outputs: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    mismatches: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        """All schedules ran and produced (numerically) equal results."""
        return not self.errors and not self.mismatches


def compare_schedules(
    kernel: KernelIR,
    *,
    grid: Sequence[int],
    block: Sequence[int],
    buffers: dict[str, np.ndarray],
    scalars: dict[str, object] | None = None,
    warp_size: int = 32,
    schedules: Sequence[str] = DEFAULT_SCHEDULES,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> ScheduleComparison:
    """Run ``kernel`` under several schedules and diff the output buffers.

    ``buffers`` maps pointer parameter names to initial array contents
    (laid out into a fresh flat device memory per schedule); ``scalars``
    maps the remaining parameters to values.  Floating-point outputs are
    compared with a tolerance: legal schedules may reorder atomic float
    additions, and that rounding jitter is not a race.
    """
    scalars = scalars or {}
    align = 64
    layout: dict[str, tuple[int, np.ndarray]] = {}
    cursor = align  # keep byte 0 unused so "address 0" bugs fault
    for name, arr in buffers.items():
        arr = np.ascontiguousarray(arr)
        layout[name] = (cursor, arr)
        cursor += arr.nbytes
        cursor = -(-cursor // align) * align
    total = cursor + align

    args: list[object] = []
    for param in kernel.params:
        if param.is_pointer:
            if param.name not in layout:
                raise LaunchError(f"no buffer supplied for '{param.name}'")
            args.append(layout[param.name][0])
        else:
            if param.name not in scalars:
                raise LaunchError(f"no value supplied for '{param.name}'")
            args.append(scalars[param.name])

    result = ScheduleComparison(schedules=tuple(schedules))
    for schedule in schedules:
        gmem = np.zeros(total, dtype=np.uint8)
        for name, (base, arr) in layout.items():
            gmem[base:base + arr.nbytes] = np.frombuffer(
                arr.tobytes(), dtype=np.uint8)
        try:
            if schedule == "lockstep":
                # Default executor config: multi-block batched, the same
                # path production launches take.
                KernelExecutor(kernel, warp_size, gmem).launch(
                    grid, block, args)
            elif schedule == "serial-forward":
                SerialExecutor(kernel, warp_size, gmem).launch(
                    grid, block, args, order="forward")
            elif schedule == "serial-reverse":
                SerialExecutor(kernel, warp_size, gmem).launch(
                    grid, block, args, order="reverse")
            else:
                raise LaunchError(f"unknown schedule '{schedule}'")
        except Exception as exc:  # recorded, not raised: callers diff these
            result.errors[schedule] = f"{type(exc).__name__}: {exc}"
            continue
        out: dict[str, np.ndarray] = {}
        for name, (base, arr) in layout.items():
            out[name] = gmem[base:base + arr.nbytes].view(
                arr.dtype).reshape(arr.shape).copy()
        result.outputs[schedule] = out

    ran = [s for s in schedules if s in result.outputs]
    for i, s1 in enumerate(ran):
        for s2 in ran[i + 1:]:
            for name in buffers:
                a, b = result.outputs[s1][name], result.outputs[s2][name]
                if np.issubdtype(a.dtype, np.floating):
                    same = np.allclose(a, b, rtol=rtol, atol=atol,
                                       equal_nan=True)
                else:
                    same = bool(np.array_equal(a, b))
                if not same:
                    result.mismatches.append((s1, s2, name))
    return result
