"""transval — translation validation for source-to-source routes.

The matrix's *indirect* and *limited* cells all pass through a
:class:`~repro.translate.base.SourceTranslator` (HIPIFY, SYCLomatic,
GPUFORT, acc2omp) — exactly the hop where semantics drift silently.
This module statically certifies each hop on three levels, emitting
``TV01``–``TV06`` Diagnostics through the shared kernelsan machinery:

1. **Feature-tag conservation** — every tag the source model can put on
   a unit is either mapped or *explicitly* rejected (``TV01``), and the
   translator never invents tags outside the target model's vocabulary
   (``TV02``).
2. **Kernel-IR structural equivalence** — a translated unit's kernels
   must match the source unit's after normalization: same memory
   accesses per address space, same barrier/atomic/shuffle structure,
   same control shape, modulo register renaming and pure arithmetic
   (``TV03``).
3. **Rewrite-rule auditing** — translating the translator's literal
   witness corpus must leave no source-model identifiers behind
   (``TV04``), every ``PATTERN_RULES`` entry must be able to fire
   (``TV05``), and rules that drop constructs into TODO comments must
   surface structured warnings, not just output text (``TV06``).

The witness corpora are deliberately *literal* source snippets, not
generated from ``IDENTIFIER_MAP``: deleting a map entry must leave the
witness intact so the stale identifier is caught, instead of silently
shrinking the corpus.

Entry points: :func:`validate_translator` (map + witness audit),
:func:`validate_translation` (one translated unit, used by
``Toolchain.compile(sanitize=True)``), :func:`validate_all` (every
shipped translator; the ``gpu-compat transval`` CLI).
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, LintReport, make
from repro.compilers.features import MODEL_TAG_VOCABULARY
from repro.frontends.source import TranslationUnit
from repro.isa.instructions import (
    AtomicOp,
    Barrier,
    Exit,
    If,
    Load,
    SharedAlloc,
    Shuffle,
    Store,
    While,
)


# ---------------------------------------------------------------------------
# Kernel-IR structural signatures (TV03)
# ---------------------------------------------------------------------------


def _body_signature(body) -> tuple:
    out = []
    for ins in body:
        if isinstance(ins, Load):
            out.append(("load", ins.space))
        elif isinstance(ins, Store):
            out.append(("store", ins.space))
        elif isinstance(ins, AtomicOp):
            out.append(("atomic", ins.op, ins.space))
        elif isinstance(ins, Barrier):
            out.append(("barrier",))
        elif isinstance(ins, Shuffle):
            out.append(("shuffle", ins.mode))
        elif isinstance(ins, SharedAlloc):
            out.append(("shared_alloc", ins.dtype.name, ins.count))
        elif isinstance(ins, Exit):
            out.append(("exit",))
        elif isinstance(ins, If):
            out.append(("if",
                        _body_signature(ins.then_body),
                        _body_signature(ins.else_body)))
        elif isinstance(ins, While):
            out.append(("while",
                        _body_signature(ins.cond_body),
                        _body_signature(ins.body)))
        # Register-level instructions (Mov/BinOp/Cmp/Select/Cvt/
        # SpecialRead/...) are deliberately not part of the signature:
        # a legal translation may rename registers and re-associate pure
        # arithmetic, but must not change what touches memory or how
        # threads synchronize.
    return tuple(out)


def kernel_signature(ir) -> tuple:
    """Normalized structural signature of one kernel IR.

    Two kernels with equal signatures perform the same memory accesses
    per address space under the same barrier/atomic/shuffle and control
    structure; parameter and register *names* do not participate.
    """
    params = tuple((p.dtype.name, p.is_pointer) for p in ir.params)
    return (params, _body_signature(ir.body), tuple(sorted(ir.features)))


# ---------------------------------------------------------------------------
# Unit-level validation (the sanitize-pipeline hook)
# ---------------------------------------------------------------------------


def validate_translation(tu: TranslationUnit) -> list[Diagnostic]:
    """Validate one *translated* unit against its recorded origin.

    ``tu.origin`` must be a
    :class:`~repro.translate.base.TranslationOrigin`; units without one
    (authored directly in their model) validate vacuously.
    """
    origin = tu.origin
    if origin is None:
        return []
    translator = origin.translator
    source = origin.source
    name = translator.NAME
    diags: list[Diagnostic] = []

    # Tag conservation: every non-passthrough source tag must map, and
    # the union of the mapped images must be exactly what was emitted.
    expected: set[str] = set()
    for tag in sorted(source.all_features()):
        if tag in translator.PASSTHROUGH:
            continue
        mapped = translator.TAG_MAP.get(tag)
        if mapped is None:
            diags.append(make(
                "TV01", name, f"unit {source.name}",
                f"source tag '{tag}' reached the translated unit without a "
                f"mapping (translate_unit should have rejected it)",
                hint="add the tag to TAG_MAP or map it to None to reject it",
            ))
            continue
        expected.update(mapped)
    emitted = set(tu.features)
    vocabulary = MODEL_TAG_VOCABULARY.get(tu.model, frozenset())
    for tag in sorted(emitted - expected):
        diags.append(make(
            "TV02", name, f"unit {tu.name}",
            f"emitted tag '{tag}' derives from no source tag",
        ))
    for tag in sorted(expected - emitted):
        diags.append(make(
            "TV01", name, f"unit {tu.name}",
            f"mapped tag '{tag}' was dropped from the translated unit",
        ))
    for tag in sorted(emitted - vocabulary):
        diags.append(make(
            "TV02", name, f"unit {tu.name}",
            f"emitted tag '{tag}' is not in the {tu.model.value} "
            f"model's vocabulary",
        ))

    # Kernel-IR structural equivalence.
    src_kernels = {k.name: k for k in source.kernels}
    out_kernels = {k.name: k for k in tu.kernels}
    for kname in sorted(src_kernels.keys() - out_kernels.keys()):
        diags.append(make(
            "TV03", kname, f"unit {tu.name}",
            f"kernel '{kname}' of the source unit is missing after "
            f"translation by {name}",
        ))
    for kname in sorted(out_kernels.keys() - src_kernels.keys()):
        diags.append(make(
            "TV03", kname, f"unit {tu.name}",
            f"kernel '{kname}' appeared during translation by {name} "
            f"without a source counterpart",
        ))
    for kname in sorted(src_kernels.keys() & out_kernels.keys()):
        src_sig = kernel_signature(src_kernels[kname].ir)
        out_sig = kernel_signature(out_kernels[kname].ir)
        if src_sig != out_sig:
            diags.append(make(
                "TV03", kname, f"unit {tu.name}",
                f"kernel '{kname}' is not structurally equivalent across "
                f"{name}: memory/synchronization shape changed",
                hint="translators may rename registers, not restructure "
                     "memory accesses or barriers",
            ))
    return diags


# ---------------------------------------------------------------------------
# Translator-level validation (map + witness audit)
# ---------------------------------------------------------------------------


def validate_translator(translator) -> list[Diagnostic]:
    """Statically audit one translator's maps and rewrite rules."""
    name = translator.NAME
    diags: list[Diagnostic] = []

    # TV01 — domain coverage: every tag the source model can put on a
    # unit is either mapped or explicitly rejected (None).  A tag simply
    # *absent* from TAG_MAP makes translate_unit raise "construct not
    # recognized", which measures as route failure without documenting
    # whether the construct is untranslatable or just forgotten.
    domain = frozenset(translator.SOURCE_TAG_DOMAIN) - translator.PASSTHROUGH
    for tag in sorted(domain - translator.TAG_MAP.keys()):
        diags.append(make(
            "TV01", name, f"TAG_MAP[{tag!r}]",
            f"source tag '{tag}' of the {translator.SOURCE_MODEL.value} "
            f"domain is neither mapped nor explicitly rejected",
            hint="map the tag, or map it to None to document the rejection",
        ))

    # TV02 — image containment: everything the map can emit must be a
    # legal tag of the target model.
    vocabulary = MODEL_TAG_VOCABULARY.get(translator.TARGET_MODEL, frozenset())
    for tag, mapped in sorted(translator.TAG_MAP.items()):
        if not mapped:
            continue
        for out_tag in mapped:
            if out_tag not in vocabulary:
                diags.append(make(
                    "TV02", name, f"TAG_MAP[{tag!r}]",
                    f"'{tag}' maps to '{out_tag}', which is not in the "
                    f"{translator.TARGET_MODEL.value} model's vocabulary",
                ))

    # Witness audit — translate the literal witness corpus.
    witness = translator.WITNESS_SOURCE
    if not witness:
        return diags
    _translated, report = translator.translate_source(witness)

    # TV04 — identifier completeness: the tool's own leftover scanner
    # must find nothing in its translated witness.
    for warning in report.warnings:
        if "unconverted identifier" in warning:
            ident = warning.rsplit("'", 2)[-2] if "'" in warning else warning
            diags.append(make(
                "TV04", name, "witness",
                f"identifier '{ident}' survives translation of the "
                f"witness corpus",
                hint="restore the IDENTIFIER_MAP entry or extend a "
                     "PATTERN_RULES rewrite",
            ))

    # TV05 — dead rules: every PATTERN_RULES entry must fire at least
    # once on the witness (the witness is written to exercise them all,
    # so a zero hit count means the pattern is dead or shadowed by an
    # earlier rewrite).
    for idx, hits in enumerate(report.rule_hits):
        if hits == 0:
            pattern = translator.PATTERN_RULES[idx][0]
            diags.append(make(
                "TV05", name, f"PATTERN_RULES[{idx}]",
                f"rewrite rule {pattern!r} never fires on the witness "
                f"corpus",
                hint="fix the pattern or extend WITNESS_SOURCE to cover it",
            ))

    # TV06 — silent TODO drops: every firing of a TODO-emitting rule
    # must be accompanied by a structured warning.
    todo_hits = sum(
        hits for (  # noqa: B007 - paired iteration
            _pattern, replacement), hits in zip(
            translator.PATTERN_RULES, report.rule_hits)
        if "TODO" in replacement
    )
    todo_warnings = sum(1 for w in report.warnings if "TODO" in w)
    if todo_hits > todo_warnings:
        diags.append(make(
            "TV06", name, "witness",
            f"{todo_hits} construct(s) were rewritten to TODO comments "
            f"but only {todo_warnings} structured warning(s) were issued",
            hint="append a warning to TranslationReport.warnings for every "
                 "dropped construct",
        ))
    return diags


def shipped_translators() -> list:
    """One instance of every translator the route registry uses."""
    from repro.enums import Model
    from repro.translate import AccToOmp, Gpufort, Hipify, Syclomatic

    return [
        Hipify(),
        Syclomatic(),
        Gpufort(source=Model.CUDA),
        Gpufort(source=Model.OPENACC),
        AccToOmp(),
    ]


def validate_all(translators=None) -> LintReport:
    """Audit every (or the given) translator; the CLI entry point."""
    report = LintReport()
    for translator in (translators if translators is not None
                       else shipped_translators()):
        report.extend(validate_translator(translator))
    return report
