"""perfstat: predict the perf-portability matrix without running kernels.

:mod:`repro.perfport` measures the 51-cell matrix *dynamically*: every
viable route streams the five BabelStream kernels through its full
runtime chain and the roofline model times each metered launch.  This
module produces the same matrix **statically** — zero kernel
executions, zero compiles — by composing three proofs that already
exist in the analysis layer:

1. **Route viability** comes from the route-evidence derivation
   (:func:`repro.analysis.routes_evidence.derive_matrix`) plus a replay
   of each chain's translator against the feature tags the stream
   adapters place on their translation units
   (:data:`STREAM_SOURCE_TAGS`) and each Python package's feature set —
   the exact gates that make dynamic routes fail, evaluated on tag
   tables instead of executions.
2. **Launch cost** comes from the abstract cost interpreter
   (:mod:`repro.analysis.costmodel`), whose counters are bit-equal to
   the dynamic interpreter's :class:`LaunchStats` for every stream
   kernel.
3. **Time** comes from the same :class:`~repro.gpu.perfmodel.PerfModel`
   roofline (via :func:`~repro.gpu.perfmodel.perf_constants` and the
   device specs) the dynamic path uses, plus the chain's dispatch
   overhead and the adapter's host<->device transfers in the timed dot
   window.

The result (:class:`StaticPerfMatrix`) mirrors
:class:`~repro.perfport.matrix.PerfMatrix` closely enough that the
dynamic cascade/Pennycook reductions run on it unchanged.  A
differential cross-checker (:func:`cross_check_perf`) then closes the
loop: static vs. dynamic, cell by cell and route by route, emitting
``PS01``-``PS06`` diagnostics with a documented-divergence ledger
(:data:`repro.data.perf_divergences.KNOWN_PERF_DIVERGENCES`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.analysis.costmodel import KernelCost, cost_kernel
from repro.analysis.diagnostics import LintReport, make
from repro.analysis.routes_evidence import derive_matrix
from repro.core.classifier import DEFAULT_THRESHOLDS, Thresholds
from repro.core.routes import Route, all_routes, routes_for
from repro.data.perf_divergences import divergence_reason
from repro.enums import (
    Language,
    Model,
    SupportCategory,
    Vendor,
    all_cells,
)
from repro.errors import TranslationError
from repro.frontends.source import TranslationUnit
from repro.gpu.perfmodel import PerfModel
from repro.gpu.specs import default_spec
from repro.kernels import BLOCK, KERNEL_LIBRARY
from repro.perfport.matrix import PerfMatrix, PerfParams
from repro.workloads.babelstream import (
    STREAM_KERNELS,
    STREAM_MOVED_ARRAYS,
    SUITE_ADAPTERS,
)

Cell = tuple[Vendor, Model, Language]

#: Measured-vs-predicted ratio beyond which a PS01 fires (the ISSUE's
#: "measured >= 2x off" policy; within it, the cell gets a PS03 note).
PS_TOLERANCE = 2.0

_HW_STREAM = frozenset({"barrier", "atomics", "shared_memory"})

#: Feature tags the stream adapters place on their translation units,
#: per probe suite — the union over the five kernels, so one replay of a
#: chain's translator against this set reproduces exactly the failures
#: a dynamic run would hit on *any* stream kernel.  Hardware tags ride
#: along for documentation; translators pass them through.
STREAM_SOURCE_TAGS: dict[str, frozenset[str]] = {
    "cuda_cpp": frozenset({"cuda:kernels", "cuda:memcpy"}) | _HW_STREAM,
    "cuda_fortran": frozenset({"cuf:kernels", "cuda:memcpy"}) | _HW_STREAM,
    "hip_cpp": frozenset({"hip:kernels", "hip:memcpy"}) | _HW_STREAM,
    "hip_fortran": frozenset({"hip:kernels", "hip:memcpy"}) | _HW_STREAM,
    "openacc": frozenset({
        "acc:parallel", "acc:loop", "acc:copyin_copyout", "acc:reduction",
        "acc:gang_worker_vector"}) | _HW_STREAM,
    "openmp": frozenset({
        "omp:target", "omp:teams", "omp:distribute", "omp:parallel_for",
        "omp:map", "omp:reduction"}) | _HW_STREAM,
    "stdpar_cpp": frozenset({"stdpar:transform",
                             "stdpar:transform_reduce"}) | _HW_STREAM,
    "stdpar_fortran": frozenset({"dc:do_concurrent",
                                 "dc:reduce"}) | _HW_STREAM,
}

#: ``py:*`` features the Python stream adapter needs from a package.
PYTHON_STREAM_FEATURES = frozenset(
    {"py:numpy_interop", "py:custom_kernels", "py:reduction"})

#: Host<->device transfers inside the timed dot window, per suite: the
#: runtime/Kokkos/Alpaka adapters zero the accumulator on device and
#: copy the scalar back (2 copies); the Python adapter's ``pkg.dot``
#: only copies the result out (1).
DOT_WINDOW_TRANSFERS = {suite: 1 if suite == "python" else 2
                        for suite in SUITE_ADAPTERS}

#: Canonical launch geometry + scalar arguments for every library
#: kernel — the shapes ``gpu-compat lint --perf`` and the perfstat
#: benchmark cost kernels at.  Pointer parameters never need values.
STATIC_LAUNCHES: dict[str, tuple[tuple[int, ...], tuple[int, ...],
                                 dict[str, float]]] = {
    "stream_copy": ((64,), (BLOCK,), {"n": 16384}),
    "stream_mul": ((64,), (BLOCK,), {"n": 16384, "scalar": 0.4}),
    "stream_add": ((64,), (BLOCK,), {"n": 16384}),
    "stream_triad": ((64,), (BLOCK,), {"n": 16384, "scalar": 0.4}),
    "stream_dot": ((64,), (BLOCK,), {"n": 16384}),
    "axpy": ((64,), (BLOCK,), {"n": 16384, "alpha": 1.5}),
    "gemv": ((64,), (BLOCK,), {"m": 16384, "n": 64, "alpha": 1.0,
                               "beta": 0.5}),
    "fill": ((64,), (BLOCK,), {"n": 16384, "value": 3.0}),
    "scale_inplace": ((64,), (BLOCK,), {"n": 16384, "alpha": 2.0}),
    "ew_add": ((64,), (BLOCK,), {"n": 16384}),
    "ew_sub": ((64,), (BLOCK,), {"n": 16384}),
    "ew_mul": ((64,), (BLOCK,), {"n": 16384}),
    "ew_div": ((64,), (BLOCK,), {"n": 16384}),
    "ew_scalar_add": ((64,), (BLOCK,), {"n": 16384, "s": 1.0}),
    "ew_scalar_mul": ((64,), (BLOCK,), {"n": 16384, "s": 2.0}),
    "ew_sqrt": ((64,), (BLOCK,), {"n": 16384}),
    "ew_exp": ((64,), (BLOCK,), {"n": 16384}),
    "ew_maximum": ((64,), (BLOCK,), {"n": 16384}),
    "reduce_sum": ((64,), (BLOCK,), {"n": 16384}),
    "reduce_max": ((64,), (BLOCK,), {"n": 16384}),
    "warp_reduce_sum": ((64,), (BLOCK,), {"n": 16384}),
    "histogram": ((64,), (BLOCK,), {"n": 16384, "nbins": 64}),
    "bitonic_step": ((64,), (BLOCK,), {"n": 16384, "j": 1, "k": 2}),
    "scan_step": ((64,), (BLOCK,), {"n": 16384, "offset": 1}),
    "flops_burner": ((64,), (BLOCK,), {"n": 16384, "iters": 16}),
    "jacobi2d": ((8, 8), (16, 16), {"nx": 128, "ny": 128}),
    # O(n^2) interaction loop: kept small so costing it honors the
    # lint --perf latency budget (<10 ms/kernel).
    "nbody_forces": ((1,), (128,), {"n": 128, "softening": 0.01}),
}

#: Scalar dot result copied back in the timed window.
_DOT_RESULT_BYTES = 8


@lru_cache(maxsize=8)
def stream_kernel_costs(n: int) -> dict[str, KernelCost]:
    """Static cost of each stream kernel at the adapter geometry.

    Every adapter launches ``block=256`` with ``grid=ceil(n/256)``
    (dot's grid-stride launch capped at 256 blocks).  The stream
    kernels read no ``laneid``/``warpsize``, so one cost per kernel
    serves every vendor.
    """
    grid = -(-n // BLOCK)
    costs: dict[str, KernelCost] = {}
    for kernel in STREAM_KERNELS:
        g = min(256, grid) if kernel == "dot" else grid
        scalars: dict[str, float] = {"n": n}
        if kernel in ("mul", "triad"):
            scalars["scalar"] = 0.4
        costs[kernel] = cost_kernel(
            KERNEL_LIBRARY[f"stream_{kernel}"].ir, (g,), (BLOCK,), scalars)
    return costs


# ---------------------------------------------------------------------------
# Static per-route prediction
# ---------------------------------------------------------------------------


@dataclass
class StaticRoutePerf:
    """Predicted five-kernel stream performance of one route.

    The static twin of :class:`~repro.perfport.matrix.RoutePerf`:
    ``viable`` plays the role of ``ok and verified``, ``seconds`` the
    role of ``best_seconds`` — predicted steady-state time per kernel,
    dispatch overhead and dot-window transfers included.
    """

    route_id: str
    via: str
    translated: bool
    viable: bool
    reason: str | None = None  # why the route is statically non-viable
    translation_hops: tuple[str, ...] = ()
    dispatch_overhead_s: float = 0.0
    seconds: dict[str, float] = field(default_factory=dict)
    bound: dict[str, str] = field(default_factory=dict)
    exact: bool = True
    notes: tuple[str, ...] = ()

    def bandwidth_gbs(self, kernel: str, params: PerfParams) -> float:
        moved = STREAM_MOVED_ARRAYS[kernel] * params.n * params.dtype_bytes
        secs = self.seconds[kernel]
        return moved / secs / 1e9 if secs > 0 else 0.0

    def efficiency(self, params: PerfParams, peak_gbs: float) -> float:
        """Predicted harmonic-mean fraction of peak; 0 when non-viable."""
        if not self.viable:
            return 0.0
        fractions = [
            self.bandwidth_gbs(k, params) / peak_gbs for k in STREAM_KERNELS
        ]
        if any(f <= 0 for f in fractions):
            return 0.0
        return len(fractions) / sum(1.0 / f for f in fractions)

    @property
    def ok(self) -> bool:
        """Duck-type compatibility with ``RoutePerf`` consumers."""
        return self.viable

    @property
    def verified(self) -> bool:
        return self.viable


@dataclass
class StaticPerfCell:
    """Predicted perf of one (vendor, model, language) cell."""

    vendor: Vendor
    model: Model
    language: Language
    device: str
    peak_gbs: float
    routes: list[StaticRoutePerf] = field(default_factory=list)

    @property
    def supported(self) -> bool:
        return any(r.viable for r in self.routes)

    def best_route(self, params: PerfParams) -> StaticRoutePerf | None:
        """Highest predicted efficiency (ties: registry order)."""
        best: StaticRoutePerf | None = None
        best_eff = 0.0
        for r in self.routes:
            eff = r.efficiency(params, self.peak_gbs)
            if eff > best_eff:
                best, best_eff = r, eff
        return best

    def efficiency(self, params: PerfParams) -> float:
        best = self.best_route(params)
        return best.efficiency(params, self.peak_gbs) if best else 0.0


@dataclass
class StaticPerfMatrix:
    """Predicted perf matrix over all Figure-1 cells.

    Duck-type compatible with :class:`~repro.perfport.matrix.PerfMatrix`
    where it matters: the cascade and Pennycook reductions in
    :mod:`repro.perfport.portability` run on it unchanged.
    """

    params: PerfParams
    cells: dict[Cell, StaticPerfCell]

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def cell(self, vendor: Vendor, model: Model,
             language: Language) -> StaticPerfCell:
        return self.cells[(vendor, model, language)]

    def efficiency(self, vendor: Vendor, model: Model,
                   language: Language) -> float:
        return self.cells[(vendor, model, language)].efficiency(self.params)


def _translator_chain(rt) -> tuple:
    """(base runtime, translator) of a constructed chain."""
    base = getattr(rt, "_rt", rt)
    return base, getattr(base, "translator", None)


def _replay_translator(route: Route, translator, base) -> str | None:
    """Replay the chain's translator over the stream adapter's tags.

    Runs the *real* ``translate_unit`` tag logic on a synthetic unit
    carrying :data:`STREAM_SOURCE_TAGS` — no kernels attached, nothing
    compiled — so an untranslatable construct fails here exactly as it
    fails a dynamic stream run.  Returns the failure reason, or ``None``
    when the route translates cleanly.
    """
    tags = STREAM_SOURCE_TAGS.get(route.probe_suite)
    if tags is None:
        return None
    tu = TranslationUnit(
        name=f"perfstat_{route.route_id}",
        model=base.MODEL,
        language=base.language,
        features=set(tags),
    )
    try:
        translator.translate_unit(tu)
    except TranslationError as exc:
        return f"TranslationError: {exc}"
    return None


def predict_route(route: Route, params: PerfParams,
                  evidence_category: SupportCategory) -> StaticRoutePerf:
    """Predict one route's stream performance with zero executions.

    Constructing the chain (:meth:`Route.chain`) wires up toolchain,
    translator, and dispatch overheads without compiling anything —
    the same inspection trick the route-evidence analyzer uses.
    """
    from repro.gpu.device import Device
    from repro.models.pymodels import PyPackage

    perf = StaticRoutePerf(
        route_id=route.route_id, via=route.via,
        translated=route.is_translation, viable=False,
    )
    if route.probe_suite not in SUITE_ADAPTERS:
        perf.reason = f"no stream adapter for suite '{route.probe_suite}'"
        return perf
    if evidence_category is SupportCategory.NONE:
        perf.reason = "route-evidence derivation: no provable support"
        return perf
    device = Device(default_spec(route.vendor))
    rt = route.chain(device)
    base, translator = _translator_chain(rt)
    if translator is not None:
        perf.translation_hops = (translator.NAME,)
        reason = _replay_translator(route, translator, base)
        if reason is not None:
            perf.reason = reason
            return perf
    if isinstance(rt, PyPackage):
        missing = sorted(PYTHON_STREAM_FEATURES - set(rt.features))
        if missing:
            perf.reason = (f"package {rt.name} lacks feature(s) "
                           f"{', '.join(missing)}")
            return perf
    perf.viable = True
    perf.dispatch_overhead_s = float(
        getattr(base, "dispatch_overhead_s", 0.0))
    model = PerfModel(default_spec(route.vendor))
    transfers = DOT_WINDOW_TRANSFERS[route.probe_suite]
    costs = stream_kernel_costs(params.n)
    for kernel, cost in costs.items():
        timing = model.time_launch(cost.stats)
        seconds = perf.dispatch_overhead_s + timing.seconds
        if kernel == "dot":
            seconds += transfers * model.time_transfer(_DOT_RESULT_BYTES)
        perf.seconds[kernel] = seconds
        perf.bound[kernel] = timing.bound
        if not cost.exact:
            perf.exact = False
            perf.notes = perf.notes + tuple(
                f"{kernel}: {n}" for n in cost.notes)
    return perf


def build_static_perf_matrix(
        params: PerfParams = PerfParams(),
        thresholds: Thresholds = DEFAULT_THRESHOLDS) -> StaticPerfMatrix:
    """Predict all 51 cells statically — zero kernel executions.

    Routes enter a cell in registry order when the route-evidence
    derivation rates them above "no support", mirroring
    :func:`repro.perfport.matrix.viable_routes` against the measured
    compatibility matrix (the two agree cell-for-cell; the RE cross-
    check gates that).
    """
    derived = derive_matrix(thresholds=thresholds)
    categories = {
        (ev.route.route_id): ev.category
        for cell in derived.values() for ev in cell.evidence
    }
    cells: dict[Cell, StaticPerfCell] = {}
    for cell in all_cells():
        vendor, model, language = cell
        spec = default_spec(vendor)
        routes = [
            predict_route(route, params, categories[route.route_id])
            for route in routes_for(vendor, model, language)
            if categories[route.route_id] is not SupportCategory.NONE
        ]
        cells[cell] = StaticPerfCell(
            vendor=vendor, model=model, language=language,
            device=spec.name, peak_gbs=spec.bandwidth_gbs, routes=routes,
        )
    return StaticPerfMatrix(params=params, cells=cells)


# ---------------------------------------------------------------------------
# Library-kernel cost lint (the per-kernel half of ``lint --perf``)
# ---------------------------------------------------------------------------


def library_kernel_costs() -> dict[str, KernelCost]:
    """Static cost of every library kernel at its canonical launch."""
    costs: dict[str, KernelCost] = {}
    for name in KERNEL_LIBRARY:
        grid, block, scalars = STATIC_LAUNCHES[name]
        costs[name] = cost_kernel(KERNEL_LIBRARY[name].ir, grid, block,
                                  scalars)
    return costs


def library_cost_report(costs: dict[str, KernelCost] | None = None,
                        ) -> LintReport:
    """PS05 notes for every kernel whose cost model is conservative."""
    report = LintReport()
    for name, cost in sorted((costs or library_kernel_costs()).items()):
        if cost.exact:
            continue
        report.add(make(
            "PS05", name, "",
            f"static cost is a conservative bound, not exact: "
            f"{'; '.join(cost.notes)}",
        ))
    return report


# ---------------------------------------------------------------------------
# Differential cross-check: static predictions vs. measured matrix
# ---------------------------------------------------------------------------


def _route_total(seconds: dict[str, float]) -> float:
    return sum(seconds[k] for k in STREAM_KERNELS)


def cross_check_perf(static: StaticPerfMatrix,
                     dynamic: PerfMatrix) -> LintReport:
    """Compare the static matrix against the measured one.

    Per cell:

    * ``PS04`` warning when the sets of working routes disagree (static
      viability vs. dynamic ``ok and verified``) — the structural
      check that also pins the static and dynamic Pennycook ⫫ to the
      same supported/unsupported shape;
    * ``PS01`` error per route whose measured five-kernel time is
      ``>= PS_TOLERANCE``x off the prediction (either direction);
    * ``PS02`` warning when the predicted best route is not the
      measured best route;
    * ``PS03`` info when a supported cell agrees within tolerance on
      both counts;
    * ``PS06`` info instead of PS01/PS02/PS04 when the divergence is
      documented in ``KNOWN_PERF_DIVERGENCES``.
    """
    report = LintReport()
    for key in sorted(static.cells, key=lambda k: tuple(x.value for x in k)):
        vendor, model, language = key
        scell = static.cells[key]
        dcell = dynamic.cells.get(key)
        where = f"{vendor.value}/{model.value}/{language.value}"
        if dcell is None:
            report.add(make("PS04", where, "",
                            "cell missing from the measured perf matrix"))
            continue
        static_ok = {r.route_id for r in scell.routes if r.viable}
        dynamic_ok = {r.route_id for r in dcell.routes
                      if r.ok and r.verified}
        cell_clean = True
        if static_ok != dynamic_ok:
            cell_clean = False
            detail = (f"statically viable {sorted(static_ok)} vs measured "
                      f"working {sorted(dynamic_ok)}")
            suppression = divergence_reason(vendor, model, language)
            if suppression is not None:
                report.add(make("PS06", where, "",
                                f"documented divergence: {detail} — "
                                f"{suppression}"))
            else:
                report.add(make(
                    "PS04", where, "", detail,
                    hint="align STREAM_SOURCE_TAGS / the viability gates "
                         "with the stream adapters, or document the "
                         "divergence in KNOWN_PERF_DIVERGENCES"))
        dyn_by_id = {r.route_id: r for r in dcell.routes}
        for sroute in scell.routes:
            droute = dyn_by_id.get(sroute.route_id)
            if (not sroute.viable or droute is None
                    or not (droute.ok and droute.verified)):
                continue
            predicted = _route_total(sroute.seconds)
            measured = _route_total(droute.best_seconds)
            ratio = (max(predicted, measured) / min(predicted, measured)
                     if min(predicted, measured) > 0 else float("inf"))
            if ratio >= PS_TOLERANCE:
                cell_clean = False
                detail = (f"route {sroute.route_id}: predicted "
                          f"{predicted * 1e6:.3f} us vs measured "
                          f"{measured * 1e6:.3f} us ({ratio:.2f}x off)")
                suppression = divergence_reason(vendor, model, language,
                                                sroute.route_id)
                if suppression is not None:
                    report.add(make("PS06", where, sroute.route_id,
                                    f"documented divergence: {detail} — "
                                    f"{suppression}"))
                else:
                    report.add(make(
                        "PS01", where, sroute.route_id, detail,
                        hint="the cost model and the interpreter metering "
                             "have drifted apart; reconcile them or ledger "
                             "the divergence"))
        sbest = scell.best_route(static.params)
        dbest = dcell.best_route(dynamic.params)
        sbest_id = sbest.route_id if sbest else None
        dbest_id = dbest.route_id if dbest else None
        if sbest_id != dbest_id:
            cell_clean = False
            detail = (f"predicted best route {sbest_id!r} vs measured "
                      f"{dbest_id!r}")
            suppression = divergence_reason(vendor, model, language)
            if suppression is not None:
                report.add(make("PS06", where, "",
                                f"documented divergence: {detail} — "
                                f"{suppression}"))
            else:
                report.add(make("PS02", where, "", detail))
        if cell_clean and static_ok:
            report.add(make(
                "PS03", where, "",
                f"{len(static_ok)} route(s) predicted within "
                f"{PS_TOLERANCE:g}x, best route {sbest_id!r} confirmed"))
    return report


def perf_agreement_summary(report: LintReport) -> dict[str, int]:
    """Counter rollup of a cross-check report (metrics-registry food)."""
    by_code: dict[str, int] = {}
    for d in report.diagnostics:
        by_code[d.code] = by_code.get(d.code, 0) + 1
    return {
        "cells_agreeing": by_code.get("PS03", 0),
        "prediction_errors": by_code.get("PS01", 0),
        "best_route_mismatches": by_code.get("PS02", 0),
        "structure_mismatches": by_code.get("PS04", 0),
        "conservative_kernels": by_code.get("PS05", 0),
        "suppressed_divergences": by_code.get("PS06", 0),
    }


def lint_perf(dynamic: PerfMatrix,
              params: PerfParams | None = None) -> LintReport:
    """The full ``lint --perf`` report: library costs + cross-check."""
    static = build_static_perf_matrix(params or dynamic.params)
    report = library_cost_report()
    report.extend(cross_check_perf(static, dynamic).diagnostics)
    return report
