"""Symbolic dataflow over one kernel: the shared front half of kernelsan.

A single forward walk of the structured IR computes, per instruction:

* an affine symbolic value for every register (:mod:`.symbolic`), with
  an *opaque atom* minted wherever affine reasoning gives up (loads,
  float math, non-affine arithmetic, loop-carried names);
* *thread variance* — whether a value can differ between threads of one
  block (seeded by ``tid.*``/``laneid`` special reads);
* the *guard context* — the conjunction of branch/loop conditions
  dominating the instruction, kept as affine inequalities when the
  conditions are integer comparisons;
* a *barrier epoch* — a counter incremented at every ``Barrier``, so two
  shared accesses with equal epochs are unordered ("same barrier
  interval") for the race analysis;
* structural context — enclosing loops, enclosing ``If`` arms, and a
  human-readable instruction path for diagnostics.

The walk itself judges nothing; it only produces :class:`KernelFacts`
that the analysis passes (:mod:`.races`, :mod:`.bounds`, :mod:`.lints`)
consume.  Loops are walked once with loop-carried registers *havocked*
(bound to fresh atoms) so single-iteration facts are never mistaken for
invariants; cross-iteration questions are answered by renaming the
atoms minted inside the loop (see :func:`KernelFacts.loop_atoms`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import dtypes
from repro.isa.instructions import (
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Instruction,
    Load,
    MemSpace,
    Mov,
    Operand,
    Register,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    Store,
    UnaryOp,
    While,
    walk,
)
from repro.isa.module import KernelIR
from repro.analysis.symbolic import (
    Affine,
    BoundEnv,
    MaybeAffine,
    THREAD_ATOMS,
    add,
    mul,
    sub,
)

#: Block extent assumed when no launch bounds are declared (the device
#: maximum); keeps "definite" race/bounds claims honest by default.
DEFAULT_MAX_BLOCK = 1024
DEFAULT_MAX_GRID = 1 << 31


@dataclass(frozen=True)
class LaunchBounds:
    """Optional launch geometry the kernel is analyzed under."""

    block: tuple[int, int, int] | None = None
    grid: tuple[int, int, int] | None = None

    @staticmethod
    def of(block=None, grid=None) -> "LaunchBounds":
        def _pad(t):
            if t is None:
                return None
            t = tuple(int(x) for x in t)
            return t + (1,) * (3 - len(t))
        return LaunchBounds(block=_pad(block), grid=_pad(grid))


#: One normalized guard constraint: ``("le", lhs, rhs)`` meaning
#: ``lhs <= rhs`` or ``("eq", lhs, rhs)``; both sides affine.
Constraint = tuple[str, Affine, Affine]


@dataclass(frozen=True)
class GuardLeaf:
    """One atomic condition in a guard conjunction."""

    constraint: Constraint | None  # None when not an integer comparison
    variant: bool  # condition can differ between threads


@dataclass
class Access:
    """One memory operation, with everything the passes need to judge it."""

    kind: str  # "load" | "store" | "atomic"
    space: str
    addr: MaybeAffine  # byte address
    dtype: "dtypes.DType"
    path: str
    seq: int
    epoch: int
    guards: tuple[GuardLeaf, ...]
    loops: tuple[int, ...]  # ids of enclosing While loops, outermost first
    branches: tuple[tuple[int, str], ...]  # (if_id, "then"/"else") chain
    addr_variant: bool
    value_expr: MaybeAffine = None  # stored value (stores only)
    value_variant: bool = True
    instr: Instruction | None = None


@dataclass
class BarrierSite:
    """One ``Barrier``, with the divergence-relevant context."""

    path: str
    epoch: int
    guards: tuple[GuardLeaf, ...]
    in_variant_if: bool
    in_variant_loop: bool


@dataclass
class SharedRegion:
    """One static shared-memory allocation with its resolved base."""

    name: str  # destination register name
    base: int  # byte offset within the block's shared segment
    nbytes: int
    dtype: "dtypes.DType"
    path: str


@dataclass
class LoopInfo:
    id: int
    entry_epoch: int
    exit_epoch: int
    has_barrier: bool
    cond_variant: bool
    parent_loops: tuple[int, ...]


@dataclass
class KernelFacts:
    """Everything one walk learned about a kernel."""

    kernel: KernelIR
    bounds: LaunchBounds | None
    accesses: list[Access] = field(default_factory=list)
    barriers: list[BarrierSite] = field(default_factory=list)
    shared_regions: list[SharedRegion] = field(default_factory=list)
    shuffles: list[tuple[Shuffle, str, tuple[int, ...], MaybeAffine]] = \
        field(default_factory=list)
    atomics: list[tuple[AtomicOp, str, tuple[int, ...]]] = field(default_factory=list)
    loops: dict[int, LoopInfo] = field(default_factory=dict)
    if_conds: dict[int, bool] = field(default_factory=dict)  # if_id -> variant
    variant_atoms: set[str] = field(default_factory=set)
    atom_loops: dict[str, tuple[int, ...]] = field(default_factory=dict)
    shared_total: int = 0

    # -- derived helpers ------------------------------------------------------

    def is_variant_atom(self, atom: str) -> bool:
        return atom in THREAD_ATOMS or atom in self.variant_atoms

    def variant_atoms_of(self, expr: MaybeAffine) -> frozenset[str]:
        if expr is None:
            return frozenset()
        return frozenset(a for a in expr.atoms if self.is_variant_atom(a))

    def loop_atoms(self, loop_id: int) -> frozenset[str]:
        """Atoms minted inside loop ``loop_id`` (loop-carried values)."""
        return frozenset(
            a for a, loops in self.atom_loops.items() if loop_id in loops
        )

    def base_bound_env(self, extra_atoms: frozenset[str] = frozenset()) -> BoundEnv:
        """Base ranges for hardware atoms under the declared bounds."""
        env = BoundEnv()
        block = self.bounds.block if self.bounds else None
        grid = self.bounds.grid if self.bounds else None
        for dim, axis in enumerate("xyz"):
            ntid, nctaid = f"sr:ntid.{axis}", f"sr:nctaid.{axis}"
            bx = block[dim] if block else None
            gx = grid[dim] if grid else None
            env.set_lo(ntid, Affine.of_const(1))
            env.set_hi(ntid, Affine.of_const(bx if bx else DEFAULT_MAX_BLOCK))
            if bx:
                env.set_lo(ntid, Affine.of_const(bx))
            env.set_lo(nctaid, Affine.of_const(1))
            env.set_hi(nctaid, Affine.of_const(gx if gx else DEFAULT_MAX_GRID))
            if gx:
                env.set_lo(nctaid, Affine.of_const(gx))
            for base, extent in ((f"sr:tid.{axis}", ntid),
                                 (f"sr:ctaid.{axis}", nctaid)):
                env.set_lo(base, Affine.of_const(0))
                env.set_hi(base, Affine.of_atom(extent).shift(-1))
        env.set_lo("sr:laneid", Affine.of_const(0))
        env.set_hi("sr:laneid", Affine.of_atom("sr:warpsize").shift(-1))
        env.set_lo("sr:warpsize", Affine.of_const(16))
        env.set_hi("sr:warpsize", Affine.of_const(64))
        # Renamed copies of hardware atoms inherit the original's range.
        for atom in extra_atoms:
            original = atom.split("'", 1)[0]
            if original != atom:
                for table in (env.lo, env.hi):
                    if original in table:
                        table[atom] = table[original]
        return env

    def thread_extent(self, atom: str) -> int:
        """Max number of distinct values a thread atom takes in a block."""
        base = atom.split("'", 1)[0]
        block = self.bounds.block if self.bounds else None
        if base == "sr:laneid":
            return 64
        if base.startswith("sr:tid.") and block:
            return block["xyz".index(base[-1])]
        if base.startswith("sr:tid."):
            return DEFAULT_MAX_BLOCK
        return DEFAULT_MAX_BLOCK

    def apply_constraints(self, env: BoundEnv,
                          guards: tuple[GuardLeaf, ...],
                          rename: dict[str, str] | None = None) -> None:
        """Fold guard constraints into an atom bound environment."""
        for leaf in guards:
            if leaf.constraint is None:
                continue
            op, lhs, rhs = leaf.constraint
            if rename:
                lhs, rhs = lhs.rename(rename), rhs.rename(rename)
            if op == "eq":
                _apply_le(env, lhs, rhs)
                _apply_le(env, rhs, lhs)
            else:
                _apply_le(env, lhs, rhs)


def _apply_le(env: BoundEnv, lhs: Affine, rhs: Affine) -> None:
    """Record ``lhs <= rhs`` as per-atom bounds (unit coefficients only)."""
    diff = lhs - rhs  # diff <= 0
    for atom, c in diff.coeffs:
        rest = diff.substitute(atom, Affine())  # diff minus the atom term
        if c == 1:
            env.set_hi(atom, rest.scale(-1))
        elif c == -1:
            env.set_lo(atom, rest)


# ---------------------------------------------------------------------------
# The walk
# ---------------------------------------------------------------------------


@dataclass
class _Value:
    expr: MaybeAffine
    variant: bool
    cond: object = None  # _Cond for predicates


@dataclass
class _Cond:
    """A predicate register's condition as a guard conjunction."""

    leaves: tuple[GuardLeaf, ...] | None  # None = unknown structure
    negated: tuple[GuardLeaf, ...] | None  # leaves of the negation
    variant: bool


_CMP_NEG = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}


def _leaf_from_cmp(op: str, a: MaybeAffine, b: MaybeAffine,
                   variant: bool) -> GuardLeaf:
    if a is None or b is None:
        return GuardLeaf(None, variant)
    if op == "lt":
        return GuardLeaf(("le", a, b.shift(-1)), variant)
    if op == "le":
        return GuardLeaf(("le", a, b), variant)
    if op == "gt":
        return GuardLeaf(("le", b.shift(1), a), variant)
    if op == "ge":
        return GuardLeaf(("le", b, a), variant)
    if op == "eq":
        return GuardLeaf(("eq", a, b), variant)
    return GuardLeaf(None, variant)  # ne carries no interval information


class _Walker:
    def __init__(self, kernel: KernelIR, bounds: LaunchBounds | None):
        self.kernel = kernel
        self.facts = KernelFacts(kernel=kernel, bounds=bounds)
        self.env: dict[str, _Value] = {}
        self.guards: list[GuardLeaf] = []
        self.loops: list[int] = []
        self.branches: list[tuple[int, str]] = []
        self.in_variant_if = 0
        self.in_variant_loop = 0
        self.epoch = 0
        self.seq = 0
        self.shared_cursor = 0
        self._serial = 0
        self._loop_serial = 0
        self._if_serial = 0

        for p in kernel.params:
            if p.is_pointer:
                self.env[p.name] = _Value(Affine.of_atom(f"ptr:{p.name}"), False)
            elif p.dtype.is_integer:
                self.env[p.name] = _Value(Affine.of_atom(f"param:{p.name}"), False)
            else:
                self.env[p.name] = _Value(None, False)

    # -- helpers ------------------------------------------------------------

    def fresh_atom(self, hint: str, variant: bool) -> Affine:
        self._serial += 1
        atom = f"op:{hint}#{self._serial}"
        if variant:
            self.facts.variant_atoms.add(atom)
        if self.loops:
            self.facts.atom_loops[atom] = tuple(self.loops)
        return Affine.of_atom(atom)

    def opaque(self, reg: Register, variant: bool) -> _Value:
        return _Value(self.fresh_atom(reg.name, variant), variant)

    def read(self, op: Operand) -> _Value:
        if isinstance(op, Imm):
            if op.dtype.is_integer:
                return _Value(Affine.of_const(int(op.value)), False)
            return _Value(None, False)
        val = self.env.get(op.name)
        if val is None:  # verifier rejects this; stay robust anyway
            val = _Value(None, True)
        return val

    def path(self, idx_chain: str, label: str) -> str:
        return f"{idx_chain}: {label}"

    # -- instruction dispatch -----------------------------------------------

    def walk_body(self, body: list[Instruction], prefix: str) -> None:
        for pos, instr in enumerate(body):
            self.seq += 1
            where = f"{prefix}[{pos}]"
            self.step(instr, where)

    def step(self, instr: Instruction, where: str) -> None:
        if isinstance(instr, Mov):
            val = self.read(instr.src)
            self.env[instr.dst.name] = _Value(val.expr, val.variant, val.cond)

        elif isinstance(instr, SpecialRead):
            atom = f"sr:{instr.which}"
            self.env[instr.dst.name] = _Value(
                Affine.of_atom(atom), atom in THREAD_ATOMS
            )

        elif isinstance(instr, BinOp):
            self._binop(instr)

        elif isinstance(instr, UnaryOp):
            src = self.read(instr.src)
            if instr.op == "neg" and src.expr is not None and instr.dst.dtype.is_integer:
                self.env[instr.dst.name] = _Value(src.expr.scale(-1), src.variant)
            elif instr.op == "not":
                cond = src.cond
                neg = None
                if isinstance(cond, _Cond):
                    neg = _Cond(cond.negated, cond.leaves, cond.variant)
                self.env[instr.dst.name] = _Value(None, src.variant, neg)
            else:
                self.env[instr.dst.name] = self.opaque(instr.dst, src.variant)

        elif isinstance(instr, Cmp):
            a, b = self.read(instr.a), self.read(instr.b)
            variant = a.variant or b.variant
            int_ok = (not isinstance(instr.a, Imm) or instr.a.dtype.is_integer) and \
                     (not isinstance(instr.b, Imm) or instr.b.dtype.is_integer)
            ae = a.expr if int_ok else None
            be = b.expr if int_ok else None
            leaf = _leaf_from_cmp(instr.op, ae, be, variant)
            neg_leaf = _leaf_from_cmp(_CMP_NEG[instr.op], ae, be, variant)
            cond = _Cond(
                leaves=(leaf,),
                negated=(neg_leaf,),
                variant=variant,
            )
            self.env[instr.dst.name] = _Value(None, variant, cond)

        elif isinstance(instr, Select):
            p, a, b = (self.read(instr.pred), self.read(instr.a),
                       self.read(instr.b))
            variant = p.variant or a.variant or b.variant
            if a.expr is not None and a.expr == b.expr:
                self.env[instr.dst.name] = _Value(a.expr, variant)
            else:
                self.env[instr.dst.name] = self.opaque(instr.dst, variant)

        elif isinstance(instr, Cvt):
            src = self.read(instr.src)
            # Integer<->integer conversions keep the symbolic value (the
            # analyses ignore wrap-around, as address arithmetic stays in
            # range in well-formed kernels); anything through floats is
            # opaque.
            src_dt = instr.src.dtype
            if src_dt.is_integer and instr.dst.dtype.is_integer:
                self.env[instr.dst.name] = _Value(src.expr, src.variant)
            else:
                self.env[instr.dst.name] = self.opaque(instr.dst, src.variant)

        elif isinstance(instr, Load):
            addr = self.read(instr.addr)
            self._record_access("load", instr.space, addr, instr.dst.dtype,
                                where, instr)
            self.env[instr.dst.name] = self.opaque(instr.dst, addr.variant)

        elif isinstance(instr, Store):
            addr = self.read(instr.addr)
            src = self.read(instr.src)
            self._record_access("store", instr.space, addr,
                                instr.src.dtype, where, instr,
                                value=src)

        elif isinstance(instr, AtomicOp):
            addr = self.read(instr.addr)
            self._record_access("atomic", instr.space, addr,
                                instr.src.dtype, where, instr)
            self.facts.atomics.append((instr, where, tuple(self.loops)))
            if instr.dst is not None:
                self.env[instr.dst.name] = self.opaque(instr.dst, True)

        elif isinstance(instr, Shuffle):
            lane = self.read(instr.lane)
            self.facts.shuffles.append(
                (instr, where, tuple(self.loops), lane.expr))
            self.env[instr.dst.name] = self.opaque(instr.dst, True)

        elif isinstance(instr, SharedAlloc):
            nbytes = instr.dtype.itemsize * instr.count
            align = instr.dtype.itemsize
            self.shared_cursor = -(-self.shared_cursor // align) * align
            base = self.shared_cursor
            self.shared_cursor += nbytes
            self.facts.shared_total = self.shared_cursor
            self.facts.shared_regions.append(SharedRegion(
                name=instr.dst.name, base=base, nbytes=nbytes,
                dtype=instr.dtype, path=self.path(where, "SharedAlloc"),
            ))
            self.env[instr.dst.name] = _Value(Affine.of_const(base), False)

        elif isinstance(instr, Barrier):
            self.facts.barriers.append(BarrierSite(
                path=self.path(where, "Barrier"),
                epoch=self.epoch,
                guards=tuple(self.guards),
                in_variant_if=self.in_variant_if > 0,
                in_variant_loop=self.in_variant_loop > 0,
            ))
            self.epoch += 1

        elif isinstance(instr, Exit):
            pass  # retired lanes are excluded from barrier expectations

        elif isinstance(instr, If):
            self._walk_if(instr, where)

        elif isinstance(instr, While):
            self._walk_while(instr, where)

    # -- compound handling ---------------------------------------------------

    def _binop(self, instr: BinOp) -> None:
        a, b = self.read(instr.a), self.read(instr.b)
        variant = a.variant or b.variant
        dt = instr.dst.dtype
        expr: MaybeAffine = None
        if dt.is_integer:
            if instr.op == "add":
                expr = add(a.expr, b.expr)
            elif instr.op == "sub":
                expr = sub(a.expr, b.expr)
            elif instr.op == "mul":
                expr = mul(a.expr, b.expr)
            elif instr.op == "shl" and b.expr is not None and b.expr.is_const:
                if a.expr is not None and 0 <= b.expr.const < 64:
                    expr = a.expr.scale(1 << b.expr.const)
        if dt.is_pred and instr.op in ("and", "or"):
            ca = a.cond if isinstance(a.cond, _Cond) else None
            cb = b.cond if isinstance(b.cond, _Cond) else None
            leaves = negated = None
            if instr.op == "and" and ca and cb and ca.leaves is not None \
                    and cb.leaves is not None:
                leaves = ca.leaves + cb.leaves  # conjunction composes
            if instr.op == "or" and ca and cb and ca.negated is not None \
                    and cb.negated is not None:
                negated = ca.negated + cb.negated  # De Morgan
            self.env[instr.dst.name] = _Value(
                None, variant, _Cond(leaves, negated, variant))
            return
        if expr is not None:
            self.env[instr.dst.name] = _Value(expr, variant)
        else:
            self.env[instr.dst.name] = self.opaque(instr.dst, variant)

    def _record_access(self, kind: str, space: str, addr: _Value,
                       dtype, where: str, instr: Instruction,
                       value: _Value | None = None) -> None:
        label = f"{type(instr).__name__}({space})"
        self.facts.accesses.append(Access(
            kind=kind,
            space=space,
            addr=addr.expr,
            dtype=dtype,
            path=self.path(where, label),
            seq=self.seq,
            epoch=self.epoch,
            guards=tuple(self.guards),
            loops=tuple(self.loops),
            branches=tuple(self.branches),
            addr_variant=addr.variant,
            value_expr=value.expr if value is not None else None,
            value_variant=value.variant if value is not None else True,
            instr=instr,
        ))

    def _cond_of(self, op: Operand) -> _Cond:
        val = self.read(op)
        if isinstance(val.cond, _Cond):
            return val.cond
        if isinstance(op, Imm):
            return _Cond((), (), False)  # constant condition: no guard
        return _Cond(None, None, val.variant)

    def _walk_if(self, instr: If, where: str) -> None:
        cond = self._cond_of(instr.cond)
        self._if_serial += 1
        if_id = self._if_serial
        self.facts.if_conds[if_id] = cond.variant

        snapshot = dict(self.env)
        entry_epoch = self.epoch

        def _walk_arm(body, arm: str, leaves) -> tuple[dict, int]:
            self.env = dict(snapshot)
            self.epoch = entry_epoch
            n_guards = 0
            if leaves:
                self.guards.extend(leaves)
                n_guards = len(leaves)
            self.branches.append((if_id, arm))
            if cond.variant:
                self.in_variant_if += 1
            self.walk_body(body, f"{where}.{arm}")
            if cond.variant:
                self.in_variant_if -= 1
            self.branches.pop()
            if n_guards:
                del self.guards[-n_guards:]
            return self.env, self.epoch

        then_leaves = cond.leaves or (
            (GuardLeaf(None, cond.variant),) if cond.leaves is None else ())
        else_leaves = cond.negated or (
            (GuardLeaf(None, cond.variant),) if cond.negated is None else ())
        then_env, then_epoch = _walk_arm(instr.then_body, "then", then_leaves)
        else_env, else_epoch = _walk_arm(instr.else_body, "else", else_leaves)

        # Join: keep agreeing values, havoc the rest.
        merged: dict[str, _Value] = {}
        for name in set(then_env) | set(else_env):
            tv = then_env.get(name, snapshot.get(name))
            ev = else_env.get(name, snapshot.get(name))
            if tv is None or ev is None:
                continue
            if tv.expr is not None and tv.expr == ev.expr:
                merged[name] = _Value(tv.expr, tv.variant or ev.variant, tv.cond)
            elif tv is ev:
                merged[name] = tv
            else:
                variant = tv.variant or ev.variant or cond.variant
                merged[name] = _Value(
                    self.fresh_atom(name, variant), variant)
        self.env = merged
        self.epoch = max(then_epoch, else_epoch)

    def _walk_while(self, instr: While, where: str) -> None:
        self._loop_serial += 1
        loop_id = self._loop_serial
        parent = tuple(self.loops)
        self.loops.append(loop_id)

        # Havoc loop-carried names before analyzing the body: values
        # computed on iteration one are not loop invariants.
        carried = _defined_names(instr.cond_body) | _defined_names(instr.body)
        for name in carried:
            prev = self.env.get(name)
            variant = prev.variant if prev is not None else True
            self.env[name] = _Value(self.fresh_atom(name, variant), variant)

        entry_epoch = self.epoch
        self.walk_body(instr.cond_body, f"{where}.cond")
        cond = self._cond_of(instr.cond)
        leaves = cond.leaves if cond.leaves is not None else \
            (GuardLeaf(None, cond.variant),)
        self.guards.extend(leaves)
        if cond.variant:
            self.in_variant_loop += 1
        self.walk_body(instr.body, f"{where}.body")
        if cond.variant:
            self.in_variant_loop -= 1
        if leaves:
            del self.guards[-len(leaves):]
        exit_epoch = self.epoch

        self.loops.pop()
        self.facts.loops[loop_id] = LoopInfo(
            id=loop_id,
            entry_epoch=entry_epoch,
            exit_epoch=exit_epoch,
            has_barrier=exit_epoch > entry_epoch,
            cond_variant=cond.variant,
            parent_loops=parent,
        )

        # After the loop, every carried name (and anything assigned in the
        # body) holds an unknown final value.
        for name in carried:
            prev = self.env.get(name)
            variant = prev.variant if prev is not None else True
            variant = variant or cond.variant
            self.env[name] = _Value(self.fresh_atom(name, variant), variant)


def _defined_names(body: list[Instruction]) -> set[str]:
    names: set[str] = set()
    for instr in walk(body):
        dst = getattr(instr, "dst", None)
        if isinstance(dst, Register):
            names.add(dst.name)
    return names


def analyze_dataflow(kernel: KernelIR,
                     bounds: LaunchBounds | None = None) -> KernelFacts:
    """Run the symbolic walk over ``kernel`` and return its facts."""
    walker = _Walker(kernel, bounds)
    walker.walk_body(kernel.body, "body")
    return walker.facts
