"""Shared-memory hygiene and portability lints.

* ``UNINIT01`` — a shared load with no shared store earlier in program
  order touching the same allocation.  The interpreter zero-fills shared
  memory, so such kernels *run*, but real devices leave LDS/SLM
  undefined; this is precisely the class of bug that only shows up when
  switching vendors.
* ``DEAD01`` — a shared store never observed by any later load (or by a
  load anywhere in a common enclosing loop, which covers values carried
  into the next iteration).
* ``PORT01`` — a shuffle whose constant lane distance is >= the
  smallest execution width among the supported ISAs (Intel sub-groups
  are 16 wide; PTX warps 32; CDNA wavefronts 64).  Such code silently
  reads its own lane on the narrow target.
* ``PORT02`` — a compare-and-swap retry loop: forward progress under
  contention is a vendor-specific guarantee (advisory only).
* ``PORT03`` — a static shared footprint larger than the smallest
  per-block capacity in the device catalog.

Granularity is deliberately per-allocation, not per-element: partial
initialization is treated as initialization.  Accesses whose address
interval cannot be resolved suppress the hygiene lints for every
allocation they might touch (conservative silence).
"""

from __future__ import annotations

from repro.gpu.specs import SPEC_CATALOG
from repro.isa.instructions import MemSpace
from repro.isa.targets import get_target
from repro.enums import ISA
from repro.analysis.dataflow import Access, KernelFacts, SharedRegion
from repro.analysis.diagnostics import Diagnostic, make

#: The narrowest execution width among the supported ISAs: a shuffle
#: distance at or above this leaves the sub-group on some vendor.
MIN_EXEC_WIDTH = min(get_target(isa).warp_size for isa in ISA)

#: The smallest per-block shared capacity across the device catalog.
MIN_SHARED_PER_BLOCK = min(s.shared_per_block for s in SPEC_CATALOG.values())


def _touched_regions(acc: Access, facts: KernelFacts) -> list[SharedRegion] | None:
    """Allocations the access interval can intersect; None = unknown."""
    if acc.addr is None:
        return None
    env = facts.base_bound_env()
    facts.apply_constraints(env, acc.guards)
    lo = env.lower(acc.addr)
    hi = env.upper(acc.addr.shift(acc.dtype.itemsize))
    if lo is None or hi is None or not lo.is_const or not hi.is_const:
        return None
    out = [r for r in facts.shared_regions
           if lo.const < r.base + r.nbytes and hi.const > r.base]
    return out


def check_shared_hygiene(facts: KernelFacts) -> list[Diagnostic]:
    kernel = facts.kernel.name
    if not facts.shared_regions:
        return []

    shared = [a for a in facts.accesses if a.space == MemSpace.SHARED]
    reads: dict[str, list[Access]] = {r.name: [] for r in facts.shared_regions}
    writes: dict[str, list[Access]] = {r.name: [] for r in facts.shared_regions}
    unknown = False
    for acc in shared:
        regions = _touched_regions(acc, facts)
        if regions is None:
            unknown = True
            continue
        for region in regions:
            # Atomics read and write; count them on both sides.
            if acc.kind in ("load", "atomic"):
                reads[region.name].append(acc)
            if acc.kind in ("store", "atomic"):
                writes[region.name].append(acc)
    if unknown:
        return []  # an unresolvable access may be the missing store/load

    diags: list[Diagnostic] = []
    for region in facts.shared_regions:
        rd, wr = reads[region.name], writes[region.name]
        first_read = min(rd, key=lambda a: a.seq, default=None)
        if first_read is not None and not any(
                w.seq < first_read.seq for w in wr):
            diags.append(make(
                "UNINIT01", kernel, first_read.path,
                f"shared allocation '{region.name}' is read before any "
                f"store to it; device shared memory starts undefined",
                hint="initialize the allocation (and barrier()) before "
                     "the first read",
            ))
        for w in wr:
            observed = any(
                r.seq > w.seq or (set(r.loops) & set(w.loops))
                for r in rd)
            if not observed:
                diags.append(make(
                    "DEAD01", kernel, w.path,
                    f"store to shared allocation '{region.name}' is never "
                    f"read back",
                    hint="drop the store or the allocation if the value "
                         "is unused",
                ))
                break  # one report per allocation is enough
    return diags


def check_portability(facts: KernelFacts) -> list[Diagnostic]:
    kernel = facts.kernel.name
    diags: list[Diagnostic] = []
    for _instr, path, _loops, lane in facts.shuffles:
        if lane is not None and lane.is_const and lane.const >= MIN_EXEC_WIDTH:
            diags.append(make(
                "PORT01", kernel, f"{path}: Shuffle",
                f"shuffle distance {lane.const} assumes an execution width "
                f"> {MIN_EXEC_WIDTH}; sub-groups are only {MIN_EXEC_WIDTH} "
                f"wide on the narrowest supported ISA "
                f"({get_target(ISA.SPIRV).name})",
                hint="derive the distance from warpsize() instead of a "
                     "hard-coded lane count",
            ))
    for instr, path, loops, *_rest in facts.atomics:
        if instr.op == "cas" and loops:
            diags.append(make(
                "PORT02", kernel, f"{path}: AtomicOp(cas)",
                "compare-and-swap retry loop: forward progress under "
                "contention differs between vendors' atomics "
                "implementations",
                hint="prefer a native atomic op (add/min/max/exch) when "
                     "one exists, or bound the retries",
            ))
    shared_bytes = facts.kernel.shared_bytes
    if shared_bytes > MIN_SHARED_PER_BLOCK:
        small = min(SPEC_CATALOG.values(), key=lambda s: s.shared_per_block)
        diags.append(make(
            "PORT03", kernel, "kernel",
            f"static shared memory footprint ({shared_bytes} B) exceeds "
            f"the smallest per-block capacity in the device catalog "
            f"({MIN_SHARED_PER_BLOCK} B on {small.name})",
            hint="shrink the tile or specialize the kernel per device",
        ))
    return diags
