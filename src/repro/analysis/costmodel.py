"""Static cost model: abstract interpretation of kernel IR.

The dynamic interpreter (:mod:`repro.isa.interpreter`) meters work —
instructions, flops, bytes, atomics, barriers — as a side effect of
executing kernels on simulated memory.  This pass derives the *same*
:class:`~repro.isa.interpreter.LaunchStats` without executing anything:
it walks the IR with one NumPy lane per thread, tracking every value on
a two-level lattice

* **concrete** — per-lane arrays for everything derived from thread
  geometry, parameters, and immediates (loop counters, guards, shared
  base offsets); and
* **UNKNOWN** — a single top element for anything data-dependent
  (every ``Load`` result, every atomic return value).

Metering never depends on *values*, only on lane masks, so as long as
control flow stays on the concrete slice the derived counters are
exactly those the interpreter would record (``test_costmodel`` asserts
bit-equality against metered runs).  When control flow does touch
UNKNOWN the walk degrades conservatively instead of guessing:

* an ``If`` on an UNKNOWN predicate charges **both** arms under the
  incoming mask (an upper bound);
* a ``While`` whose condition goes UNKNOWN charges the condition block
  once and skips the body (no finite upper bound exists);
* the result is flagged ``exact=False`` with a note per degradation —
  surfaced as ``PS05`` diagnostics by :mod:`repro.analysis.perfstat`.

Memory traffic is additionally split by address space, direction, and
*stride class* (coalesced / uniform / strided / unknown), classified
from the same affine index expressions the race detector derives in
:mod:`repro.analysis.dataflow` — an access whose address is not affine
in thread ids degrades to "unknown stride" rather than being
misreported as coalesced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.dataflow import Access, LaunchBounds, analyze_dataflow
from repro.analysis.symbolic import THREAD_ATOMS
from repro.isa import dtypes
from repro.isa.instructions import (
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Load,
    MemSpace,
    Mov,
    Operand,
    Register,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    Store,
    UnaryOp,
    While,
)
from repro.isa.interpreter import LaunchStats, _c_int_div, _c_int_rem
from repro.isa.module import KernelIR

#: Stride classes, most to least desirable.
STRIDE_CLASSES = ("coalesced", "uniform", "strided", "unknown")

#: Refuse launches wider than this many lanes — the cost model is the
#: "instant answer" path and must stay bounded.
MAX_STATIC_LANES = 1 << 21

#: Give up on loops after this many body trips (marked inexact) — far
#: above anything the library kernels do under canonical launches.
MAX_STATIC_TRIPS = 1 << 17

# Mirrors of the interpreter's batching constants, for the analytic
# batch count (the one counter that depends on batch geometry).
_CHUNK_LANES = 1 << 18
_SHARED_ROW_ALIGN = 16
_SHARED_ARENA_BYTES = 32 * 1024 * 1024


class _Unknown:
    """Lattice top: a value the static walk cannot determine."""

    _instance: "_Unknown | None" = None

    def __new__(cls) -> "_Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNKNOWN"


UNKNOWN = _Unknown()


@dataclass
class KernelCost:
    """Statically derived cost of one kernel launch.

    ``stats`` carries the interpreter-compatible counters (bit-equal to
    a metered run when ``exact``); ``traffic`` refines the byte counts
    by ``(space, direction, stride class)``.
    """

    kernel: str
    grid: tuple[int, int, int]
    block: tuple[int, int, int]
    warp_size: int
    stats: LaunchStats
    traffic: dict[tuple[str, str, str], int] = field(default_factory=dict)
    shared_bytes: int = 0
    exact: bool = True
    notes: tuple[str, ...] = ()

    def traffic_by_class(self) -> dict[str, int]:
        """Bytes per stride class, summed over spaces and directions."""
        out = {klass: 0 for klass in STRIDE_CLASSES}
        for (_space, _kind, klass), nbytes in self.traffic.items():
            out[klass] += nbytes
        return out

    def coalesced_fraction(self) -> float:
        """Fraction of global traffic with provably unit-stride access."""
        glob = {k: v for k, v in self.traffic.items() if k[0] == MemSpace.GLOBAL}
        total = sum(glob.values())
        if total == 0:
            return 1.0
        good = sum(v for k, v in glob.items() if k[2] in ("coalesced", "uniform"))
        return good / total

    def to_dict(self) -> dict:
        s = self.stats
        return {
            "kernel": self.kernel,
            "grid": list(self.grid),
            "block": list(self.block),
            "warp_size": self.warp_size,
            "threads": s.threads,
            "instructions": s.instructions,
            "flops": s.flops,
            "bytes_loaded": s.bytes_loaded,
            "bytes_stored": s.bytes_stored,
            "atomic_ops": s.atomic_ops,
            "barriers": s.barriers,
            "batches": s.batches,
            "shared_bytes": self.shared_bytes,
            "traffic": {"/".join(k): v
                        for k, v in sorted(self.traffic.items())},
            "exact": self.exact,
            "notes": list(self.notes),
        }


def classify_stride(access: Access, facts) -> str:
    """Stride class of one access from its affine byte-address.

    Conservative by construction: any non-affine or data-dependent
    component (the index went through a multiply of two variables, a
    division, a load...) classifies as "unknown" — never as coalesced.
    """
    expr = access.addr
    if expr is None:
        return "unknown"
    variant = facts.variant_atoms_of(expr)
    if any(a not in THREAD_ATOMS for a in variant):
        return "unknown"  # loop-carried or data-dependent address
    if not variant:
        return "uniform"
    tx = expr.coeff("sr:tid.x")
    rest = (expr.coeff("sr:tid.y"), expr.coeff("sr:tid.z"),
            expr.coeff("sr:laneid"))
    if tx == access.dtype.itemsize and not any(rest):
        return "coalesced"
    return "strided"


def _stride_map(kernel: KernelIR, bounds: LaunchBounds) -> dict[int, str]:
    """``id(instruction) -> stride class`` via the dataflow walk."""
    try:
        facts = analyze_dataflow(kernel, bounds)
    except Exception:  # non-analyzable kernel: everything unknown
        return {}
    return {id(a.instr): classify_stride(a, facts)
            for a in facts.accesses if a.instr is not None}


def _predicted_batches(kernel: KernelIR, n_blocks: int,
                       block_threads: int) -> int:
    """Mirror of the interpreter's batch split, computed analytically."""
    blocks_per_batch = max(1, _CHUNK_LANES // block_threads)
    if kernel.uses_shared():
        shared_bytes = max(kernel.shared_bytes, 8)
        stride = -(-shared_bytes // _SHARED_ROW_ALIGN) * _SHARED_ROW_ALIGN
        blocks_per_batch = min(blocks_per_batch,
                               max(1, _SHARED_ARENA_BYTES // stride))
    return -(-n_blocks // blocks_per_batch)


class _CostWalker:
    """One abstract-interpretation pass over a kernel launch."""

    def __init__(self, kernel: KernelIR, grid: tuple[int, int, int],
                 block: tuple[int, int, int], warp_size: int,
                 args: dict[str, object], stride_map: dict[int, str]):
        self.kernel = kernel
        self.grid = grid
        self.block = block
        self.warp_size = warp_size
        self.stride_map = stride_map
        self.block_threads = block[0] * block[1] * block[2]
        self.n_blocks = grid[0] * grid[1] * grid[2]
        self.lanes = self.block_threads * self.n_blocks
        if self.lanes > MAX_STATIC_LANES:
            raise ValueError(
                f"static cost launch of {self.lanes} lanes exceeds "
                f"{MAX_STATIC_LANES}")
        self.stats = LaunchStats(threads=self.lanes)
        self.traffic: dict[tuple[str, str, str], int] = {}
        self.exact = True
        self.notes: list[str] = []
        self.exited = np.zeros(self.lanes, dtype=bool)
        #: Bumped on every Exit; lets mask/count caches know when the
        #: set of live lanes last changed without re-reducing per step.
        self._exit_gen = 0
        self.env: dict[str, object] = {}
        self._shared_cursor = 0
        self._trips = 0
        self._specials: dict[str, np.ndarray] = {}
        self._lin: np.ndarray | None = None
        self._warp_base: np.ndarray | None = None
        self._warp_len: np.ndarray | None = None
        for param in self.kernel.params:
            dt = dtypes.U64 if param.is_pointer else param.dtype
            value = args.get(param.name, UNKNOWN)
            if value is UNKNOWN or param.is_pointer:
                # Pointer *values* never matter to cost (no memory is
                # touched); keep them concrete zeros so address math
                # stays cheap, unless the caller marked them unknown.
                value = 0 if param.is_pointer else value
            if value is UNKNOWN:
                self.env[param.name] = UNKNOWN
            else:
                # 0-d: uniform values stay scalar until an op mixes
                # them with per-lane geometry (broadcasting is free).
                self.env[param.name] = np.asarray(value,
                                                  dtype=dt.np_dtype)

    # -- geometry (lazy: only what the kernel actually reads) ---------------

    def _lane_index(self) -> np.ndarray:
        if self._lin is None:
            self._lin = np.arange(self.lanes, dtype=np.int64)
        return self._lin

    def _special(self, which: str) -> np.ndarray:
        value = self._specials.get(which)
        if value is not None:
            return value
        bx, by, _bz = self.block
        gx, gy, _gz = self.grid
        if which.startswith("ntid."):
            value = np.uint32(self.block["xyz".index(which[-1])])
        elif which.startswith("nctaid."):
            value = np.uint32(self.grid["xyz".index(which[-1])])
        elif which == "warpsize":
            value = np.uint32(self.warp_size)
        else:
            block_lin = self._lane_index() % self.block_threads
            if which == "tid.x":
                value = (block_lin % bx).astype(np.uint32)
            elif which == "tid.y":
                value = ((block_lin // bx) % by).astype(np.uint32)
            elif which == "tid.z":
                value = (block_lin // (bx * by)).astype(np.uint32)
            elif which == "laneid":
                value = (block_lin % self.warp_size).astype(np.uint32)
            else:
                blk = self._lane_index() // self.block_threads
                if which == "ctaid.x":
                    value = (blk % gx).astype(np.uint32)
                elif which == "ctaid.y":
                    value = ((blk // gx) % gy).astype(np.uint32)
                elif which == "ctaid.z":
                    value = (blk // (gx * gy)).astype(np.uint32)
                else:  # pragma: no cover - verifier limits the names
                    raise KeyError(which)
        self._specials[which] = value
        return value

    def _warp_geometry(self) -> tuple[np.ndarray, np.ndarray]:
        if self._warp_base is None:
            lin = self._lane_index()
            block_lin = lin % self.block_threads
            warp_start = (block_lin // self.warp_size) * self.warp_size
            self._warp_base = (lin - block_lin) + warp_start
            self._warp_len = np.minimum(
                self.warp_size,
                self.block_threads - warp_start).astype(np.int64)
        return self._warp_base, self._warp_len

    # -- lattice helpers ----------------------------------------------------

    def _degrade(self, note: str) -> None:
        if self.exact:
            self.exact = False
        if note not in self.notes:
            self.notes.append(note)

    def read(self, op: Operand):
        if isinstance(op, Imm):
            return op.dtype.np_dtype.type(op.value)
        return self.env.get(op.name, UNKNOWN)

    def assign(self, reg: Register, value, eff: np.ndarray,
               n_active: int) -> None:
        old = self.env.get(reg.name)
        if value is UNKNOWN:
            # A partial unknown write poisons the whole register: lanes
            # outside ``eff`` keep concrete values, but tracking a mixed
            # array buys nothing the metering needs.
            self.env[reg.name] = UNKNOWN
            return
        arr = np.asarray(value)
        if arr.dtype != reg.dtype.np_dtype:
            arr = arr.astype(reg.dtype.np_dtype)
        if old is None or old is UNKNOWN or n_active == self.lanes:
            # Stored arrays are never mutated in place (partial writes
            # below always allocate), so sharing one array between
            # registers — or with the cached geometry — is safe and
            # saves a defensive copy per assignment.
            self.env[reg.name] = arr
            return
        merged = (np.full(self.lanes, old) if np.ndim(old) == 0
                  else old.copy())
        merged[eff] = arr if arr.ndim == 0 else arr[eff]
        self.env[reg.name] = merged

    # -- traffic ------------------------------------------------------------

    def _charge(self, instr, kind: str, space: str, nbytes: int) -> None:
        klass = self.stride_map.get(id(instr), "unknown")
        key = (space, kind, klass)
        self.traffic[key] = self.traffic.get(key, 0) + nbytes

    # -- the walk -----------------------------------------------------------

    def run(self) -> None:
        mask = np.ones(self.lanes, dtype=bool)
        with np.errstate(all="ignore"):
            self.exec_body(self.kernel.body, mask)

    def exec_body(self, body, mask: np.ndarray) -> None:
        # The effective mask only changes when a lane exits; cache it
        # (and its popcount) against the exit generation instead of
        # re-reducing the full lane set on every instruction.
        gen = -1
        eff = mask
        n_active = 0
        for instr in body:
            if gen != self._exit_gen:
                gen = self._exit_gen
                eff = mask & ~self.exited if gen else mask
                n_active = int(eff.sum())
            if not n_active:
                return
            self.step(instr, eff, mask, n_active)

    def step(self, instr, eff: np.ndarray, mask: np.ndarray,
             n_active: int) -> None:
        st = self.stats
        st.instructions += n_active

        if isinstance(instr, Mov):
            self.assign(instr.dst, self.read(instr.src), eff, n_active)

        elif isinstance(instr, BinOp):
            a, b = self.read(instr.a), self.read(instr.b)
            if a is UNKNOWN or b is UNKNOWN:
                self.assign(instr.dst, UNKNOWN, eff, n_active)
            else:
                self.assign(instr.dst,
                            self._binop(instr.op, a, b, instr.dst.dtype),
                            eff, n_active)
            if instr.dst.dtype.is_float:
                st.flops += n_active

        elif isinstance(instr, UnaryOp):
            src = self.read(instr.src)
            if src is UNKNOWN:
                self.assign(instr.dst, UNKNOWN, eff, n_active)
            else:
                self.assign(instr.dst, self._unary(instr.op, src), eff,
                            n_active)
            if instr.dst.dtype.is_float:
                st.flops += n_active

        elif isinstance(instr, Cmp):
            a, b = self.read(instr.a), self.read(instr.b)
            if a is UNKNOWN or b is UNKNOWN:
                self.assign(instr.dst, UNKNOWN, eff, n_active)
            else:
                fn = {"eq": np.equal, "ne": np.not_equal, "lt": np.less,
                      "le": np.less_equal, "gt": np.greater,
                      "ge": np.greater_equal}[instr.op]
                self.assign(instr.dst, fn(a, b), eff, n_active)

        elif isinstance(instr, Select):
            p = self.read(instr.pred)
            a, b = self.read(instr.a), self.read(instr.b)
            if UNKNOWN in (p, a, b):
                self.assign(instr.dst, UNKNOWN, eff, n_active)
            else:
                self.assign(instr.dst, np.where(p, a, b), eff, n_active)

        elif isinstance(instr, Cvt):
            src = self.read(instr.src)
            if src is UNKNOWN:
                self.assign(instr.dst, UNKNOWN, eff, n_active)
            else:
                self.assign(
                    instr.dst,
                    np.asarray(src).astype(instr.dst.dtype.np_dtype), eff,
                    n_active)

        elif isinstance(instr, SpecialRead):
            self.assign(instr.dst, self._special(instr.which), eff,
                        n_active)

        elif isinstance(instr, Load):
            st.bytes_loaded += n_active * instr.dst.dtype.itemsize
            self._charge(instr, "load", instr.space,
                         n_active * instr.dst.dtype.itemsize)
            self.assign(instr.dst, UNKNOWN, eff, n_active)

        elif isinstance(instr, Store):
            nbytes = n_active * instr.src.dtype.itemsize
            st.bytes_stored += nbytes
            self._charge(instr, "store", instr.space, nbytes)

        elif isinstance(instr, SharedAlloc):
            nbytes = instr.dtype.itemsize * instr.count
            align = instr.dtype.itemsize
            self._shared_cursor = -(-self._shared_cursor // align) * align
            base = self._shared_cursor
            self._shared_cursor += nbytes
            self.assign(instr.dst, np.uint64(base), eff, n_active)

        elif isinstance(instr, Barrier):
            act = eff.reshape(self.n_blocks, self.block_threads)
            live = (~self.exited).reshape(self.n_blocks, self.block_threads)
            arrived = act.any(axis=1)
            if (arrived & (act != live).any(axis=1)).any():
                # The interpreter would raise DivergentBarrierError here;
                # kernelsan reports it (DIV01/DIV02) — the cost model
                # just stops pretending its counts are exact.
                self._degrade("barrier reached under a partial lane mask")
            st.barriers += int(arrived.sum())

        elif isinstance(instr, AtomicOp):
            st.atomic_ops += n_active
            if instr.dst is not None:
                self.assign(instr.dst, UNKNOWN, eff, n_active)

        elif isinstance(instr, Shuffle):
            self._shuffle(instr, eff, n_active)

        elif isinstance(instr, Exit):
            self.exited |= eff
            self._exit_gen += 1

        elif isinstance(instr, If):
            cond = self.read(instr.cond)
            if cond is UNKNOWN:
                # Upper bound: every masked lane may take either arm.
                self._degrade("branch on a data-dependent condition "
                              "(both arms charged)")
                if (mask & ~self.exited).any():
                    self.exec_body(instr.then_body, mask)
                if instr.else_body and (mask & ~self.exited).any():
                    self.exec_body(instr.else_body, mask)
                return
            if np.ndim(cond) == 0:
                # Uniform predicate: one arm under the unchanged mask,
                # no per-lane mask arithmetic needed.
                if bool(cond):
                    self.exec_body(instr.then_body, mask)
                elif instr.else_body:
                    self.exec_body(instr.else_body, mask)
                return
            then_mask = mask & cond
            self.exec_body(instr.then_body, then_mask)
            if instr.else_body:
                self.exec_body(instr.else_body, mask & ~cond)

        elif isinstance(instr, While):
            # exec_body masks out exited lanes itself, so the loop only
            # re-intersects ``live`` with the survivors when a lane has
            # actually exited since the last check (the exit generation
            # moved) — a uniform trip count costs no mask arithmetic.
            live = mask
            gen = self._exit_gen
            if gen:
                live = live & ~self.exited
            alive = bool(live.any())
            while True:
                if gen != self._exit_gen:
                    gen = self._exit_gen
                    live = live & ~self.exited
                    alive = bool(live.any())
                if not alive:
                    break
                self.exec_body(instr.cond_body, live)
                cond = self.read(instr.cond)
                if cond is UNKNOWN:
                    # No finite upper bound exists for a data-dependent
                    # trip count; charge the condition block (already
                    # done) and leave the body uncosted.
                    self._degrade("loop with a data-dependent trip count "
                                  "(body not charged)")
                    break
                if np.ndim(cond) != 0:
                    live = live & cond
                    if gen != self._exit_gen:
                        gen = self._exit_gen
                        live = live & ~self.exited
                    alive = bool(live.any())
                elif not bool(cond):
                    break
                if not alive:
                    break
                self.exec_body(instr.body, live)
                self._trips += 1
                if self._trips > MAX_STATIC_TRIPS:
                    self._degrade(
                        f"loop exceeded the static trip budget "
                        f"({MAX_STATIC_TRIPS}); remaining trips not charged")
                    break
        else:  # pragma: no cover - verifier prevents unknown instructions
            raise TypeError(f"unknown instruction {instr!r}")

    # -- arithmetic mirrors -------------------------------------------------

    def _binop(self, op: str, a, b, result: dtypes.DType):
        if op in ("add", "sub", "mul"):
            return {"add": np.add, "sub": np.subtract,
                    "mul": np.multiply}[op](a, b)
        if op == "div":
            if result.is_float:
                return np.divide(a, b)
            return _c_int_div(np.asarray(a), np.asarray(b))
        if op == "rem":
            if result.is_float:
                return np.mod(a, b)
            return _c_int_rem(np.asarray(a), np.asarray(b))
        if op == "min":
            return np.minimum(a, b)
        if op == "max":
            return np.maximum(a, b)
        if op == "pow":
            return np.power(a, b)
        if op == "and":
            return np.logical_and(a, b) if result.is_pred else np.bitwise_and(a, b)
        if op == "or":
            return np.logical_or(a, b) if result.is_pred else np.bitwise_or(a, b)
        if op == "xor":
            return np.logical_xor(a, b) if result.is_pred else np.bitwise_xor(a, b)
        if op == "shl":
            return np.left_shift(a, b)
        if op == "shr":
            return np.right_shift(a, b)
        raise TypeError(f"unknown binary op '{op}'")  # pragma: no cover

    def _unary(self, op: str, src):
        fns = {
            "neg": np.negative, "abs": np.abs, "sqrt": np.sqrt,
            "exp": np.exp, "log": np.log, "sin": np.sin, "cos": np.cos,
            "tanh": np.tanh, "floor": np.floor, "ceil": np.ceil,
            "round": np.rint, "not": np.logical_not,
            "bitnot": np.bitwise_not,
        }
        if op == "rsqrt":
            return 1.0 / np.sqrt(src)
        return fns[op](src)

    def _shuffle(self, instr: Shuffle, eff: np.ndarray,
                 n_active: int) -> None:
        src = self.read(instr.src)
        lane = self.read(instr.lane)
        if src is UNKNOWN or lane is UNKNOWN:
            self.assign(instr.dst, UNKNOWN, eff, n_active)
            return
        if np.ndim(src) == 0:
            src = np.full(self.lanes, src)
        if np.ndim(lane) == 0:
            lane = np.full(self.lanes, lane, dtype=np.uint32)
        warp_base, warp_len = self._warp_geometry()
        my = self._lane_index()
        in_warp = my - warp_base
        w = self.warp_size
        if instr.mode == "idx":
            target = lane.astype(np.int64) % w
        elif instr.mode == "up":
            target = in_warp - lane.astype(np.int64)
        elif instr.mode == "down":
            target = in_warp + lane.astype(np.int64)
        else:  # xor
            target = in_warp ^ lane.astype(np.int64)
        valid = (target >= 0) & (target < warp_len)
        source_lane = np.where(valid, warp_base + target, my)
        self.assign(instr.dst, src[source_lane], eff, n_active)


def cost_kernel(kernel: KernelIR, grid, block, args: dict[str, object],
                warp_size: int = 32) -> KernelCost:
    """Statically derive the launch cost of ``kernel``.

    Args:
        kernel: The IR *as executed* — i.e. from a compiled
            ``TargetModule``, so the optimizer's effect on instruction
            counts is included.
        grid, block: Launch geometry (1-3 ints each, padded like a real
            launch).
        args: Scalar parameter values by name.  Missing scalars become
            UNKNOWN (degrading any control flow that reads them);
            pointer parameters never need values.
        warp_size: Execution width (affects laneid/warpsize kernels).
    """
    grid = tuple(int(g) for g in grid) + (1,) * (3 - len(grid))
    block = tuple(int(b) for b in block) + (1,) * (3 - len(block))
    bounds = LaunchBounds.of(block=block, grid=grid)
    walker = _CostWalker(kernel, grid, block, warp_size, args,
                         _stride_map(kernel, bounds))
    walker.run()
    walker.stats.batches = _predicted_batches(
        kernel, walker.n_blocks, walker.block_threads)
    return KernelCost(
        kernel=kernel.name,
        grid=grid,
        block=block,
        warp_size=warp_size,
        stats=walker.stats,
        traffic=walker.traffic,
        shared_bytes=kernel.shared_bytes,
        exact=walker.exact,
        notes=tuple(walker.notes),
    )
