"""Structured diagnostics emitted by the kernelsan static analyses.

Every analysis pass reports findings as :class:`Diagnostic` objects
rather than exceptions, so one lint run surfaces *all* problems of a
kernel at once — the model is a compiler driver printing every warning,
not a verifier bailing at the first violation.

Each diagnostic carries a stable *code* (``RACE01``, ``DIV02``, ...)
keyed into :data:`DIAGNOSTIC_CODES`; severities follow the usual
compiler convention:

* ``ERROR`` — the kernel provably misbehaves on some legal schedule or
  input within the declared launch bounds (lint gates fail the build);
* ``WARNING`` — the analysis cannot prove the kernel safe (may-alias,
  may-overflow) or the construct is portability-hazardous;
* ``INFO`` — advisory only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity; ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


#: Stable code -> (default severity, one-line description).
DIAGNOSTIC_CODES: dict[str, tuple[Severity, str]] = {
    "RACE01": (Severity.ERROR,
               "definite shared-memory data race within one barrier interval"),
    "RACE02": (Severity.WARNING,
               "possible shared-memory data race (may-alias, unproven)"),
    "DIV01": (Severity.ERROR,
              "barrier under a thread-divergent conditional"),
    "DIV02": (Severity.ERROR,
              "barrier inside a loop with a thread-divergent trip count"),
    "OOB01": (Severity.ERROR,
              "global memory access provably outside the parameter buffer"),
    "OOB02": (Severity.WARNING,
              "global memory access may exceed the parameter buffer"),
    "OOB03": (Severity.ERROR,
              "shared memory access outside the static allocation"),
    "UNINIT01": (Severity.WARNING,
                 "shared memory read before any store to the allocation"),
    "DEAD01": (Severity.WARNING,
               "shared memory store never observed by a load"),
    "PORT01": (Severity.WARNING,
               "shuffle distance assumes a fixed execution width"),
    "PORT02": (Severity.INFO,
               "CAS retry loop relies on vendor forward-progress guarantees"),
    "PORT03": (Severity.WARNING,
               "static shared memory exceeds the smallest device capacity"),
    # -- transval: translation validation (source-to-source routes) ----------
    "TV01": (Severity.ERROR,
             "feature tag neither mapped nor explicitly rejected by the "
             "translator"),
    "TV02": (Severity.ERROR,
             "translator emits a feature tag outside the target model's "
             "vocabulary"),
    "TV03": (Severity.ERROR,
             "kernel IR not structurally equivalent across the translation"),
    "TV04": (Severity.WARNING,
             "source-model identifiers survive translation of the witness "
             "corpus"),
    "TV05": (Severity.WARNING,
             "rewrite rule can never fire (dead or shadowed pattern)"),
    "TV06": (Severity.WARNING,
             "constructs dropped to TODO comments without a structured "
             "warning"),
    # -- route evidence: derived support vs. recorded Figure-1 rating --------
    "RE01": (Severity.ERROR,
             "statically derived support category contradicts the recorded "
             "paper rating"),
    "RE02": (Severity.WARNING,
             "statically derived secondary rating disagrees with the "
             "recorded dual rating"),
    "RE03": (Severity.INFO,
             "derived-vs-paper divergence suppressed by a documented entry"),
    # -- perfstat: static cost-model predictions vs. measured perf matrix ----
    "PS01": (Severity.ERROR,
             "predicted-viable route measured two times or more off the "
             "static cost-model prediction"),
    "PS02": (Severity.WARNING,
             "statically predicted best route differs from the measured "
             "best route"),
    "PS03": (Severity.INFO,
             "static prediction within tolerance of the measured result"),
    "PS04": (Severity.WARNING,
             "static route-viability structure disagrees with the measured "
             "perf matrix"),
    "PS05": (Severity.INFO,
             "cost model degraded to a conservative approximation for this "
             "kernel"),
    "PS06": (Severity.INFO,
             "static-vs-dynamic perf divergence suppressed by a documented "
             "ledger entry"),
    # -- tracesan: translation validation of trace-compiled programs ---------
    "TC01": (Severity.ERROR,
             "generated trace program's effect summary diverges from the "
             "kernel IR's interpreter semantics"),
    "TC02": (Severity.ERROR,
             "generated trace program escapes the closed exec allowlist"),
    "TC03": (Severity.ERROR,
             "deferred (sunk) register chain cannot be re-proved "
             "(single-site, dominance, or operand stability fails)"),
    "TC04": (Severity.WARNING,
             "trace equivalence proven only as a conservative bound "
             "(exact=False degradation)"),
    "TC05": (Severity.INFO,
             "kernel bailed out of trace compilation; nothing to validate"),
    "TC06": (Severity.INFO,
             "trace divergence suppressed by a documented ledger entry"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a kernelsan pass.

    Attributes:
        code: Stable identifier from :data:`DIAGNOSTIC_CODES`.
        severity: Finding severity (defaults from the code table).
        kernel: Name of the kernel the finding is in.
        path: Human-readable instruction path, e.g.
            ``"body[3].then[0] Store(shared)"``.
        message: The finding itself.
        hint: Suggested fix, empty when there is none.
    """

    code: str
    severity: Severity
    kernel: str
    path: str
    message: str
    hint: str = ""

    @property
    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    def render(self) -> str:
        """Compiler-style one/two-line rendering."""
        line = f"{self.kernel}: {self.severity.label}: [{self.code}] {self.message}"
        if self.path:
            line += f"\n    at {self.path}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> dict:
        """Machine-readable form; the schema CI and transval share."""
        return {
            "code": self.code,
            "severity": self.severity.label,
            "kernel": self.kernel,
            "path": self.path,
            "message": self.message,
            "hint": self.hint,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def make(code: str, kernel: str, path: str, message: str, hint: str = "",
         severity: Severity | None = None) -> Diagnostic:
    """Build a diagnostic, defaulting severity from the code table."""
    default, _desc = DIAGNOSTIC_CODES[code]
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else default,
        kernel=kernel,
        path=path,
        message=message,
        hint=hint,
    )


@dataclass
class LintReport:
    """Diagnostics for one module/kernel corpus, with rollups."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, more: list[Diagnostic]) -> None:
        self.diagnostics.extend(more)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def by_kernel(self) -> dict[str, list[Diagnostic]]:
        out: dict[str, list[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.kernel, []).append(d)
        return out

    def summary_line(self) -> str:
        return (f"{self.count(Severity.ERROR)} error(s), "
                f"{self.count(Severity.WARNING)} warning(s), "
                f"{self.count(Severity.INFO)} note(s)")

    def render(self) -> str:
        """Full text report, kernels in first-seen order."""
        lines: list[str] = []
        for kernel, diags in self.by_kernel().items():
            for d in sorted(diags, key=lambda d: -int(d.severity)):
                lines.append(d.render())
        lines.append(self.summary_line())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready dump: diagnostics plus severity rollups."""
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": {
                "error": self.count(Severity.ERROR),
                "warning": self.count(Severity.WARNING),
                "info": self.count(Severity.INFO),
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)


# -- SARIF ------------------------------------------------------------------

#: SARIF 2.1.0 level per severity (SARIF has no "error > warning > note"
#: numeric order, only these fixed labels).
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(report: LintReport, tool_name: str = "kernelsan") -> dict:
    """One SARIF 2.1.0 run for a lint report.

    The single shared serializer behind every ``gpu-compat lint
    --format sarif`` path (kernelsan, ``--routes``, ``--perf``): rules
    come from :data:`DIAGNOSTIC_CODES` (only codes that actually fired,
    keeping the document small), results carry the kernel/cell as a
    logical location because the simulated kernels have no source files
    to point at.
    """
    fired = sorted({d.code for d in report.diagnostics})
    rules = [
        {
            "id": code,
            "shortDescription": {"text": DIAGNOSTIC_CODES[code][1]},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[DIAGNOSTIC_CODES[code][0]],
            },
        }
        for code in fired
    ]
    rule_index = {code: i for i, code in enumerate(fired)}
    results = []
    for d in report.diagnostics:
        message = d.message if not d.hint else f"{d.message} (hint: {d.hint})"
        results.append({
            "ruleId": d.code,
            "ruleIndex": rule_index[d.code],
            "level": _SARIF_LEVELS[d.severity],
            "message": {"text": message},
            "locations": [{
                "logicalLocations": [{
                    "name": d.kernel,
                    "fullyQualifiedName": (f"{d.kernel}::{d.path}"
                                           if d.path else d.kernel),
                    "kind": "function",
                }],
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def to_sarif_json(report: LintReport, tool_name: str = "kernelsan",
                  indent: int | None = 2) -> str:
    import json

    return json.dumps(to_sarif(report, tool_name), indent=indent)
