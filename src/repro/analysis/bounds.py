"""Out-of-bounds analysis: interval abstract interpretation of addresses.

Global accesses are checked against caller-declared buffer *extents*
(``{param_name: element_count}``, where the count may itself name a
scalar parameter, e.g. ``{"x": "n"}``).  The byte address must decompose
as ``ptr:<param> + affine offset``; the offset's interval under the
launch bounds and dominating guards is compared against the extent:

* provably inside -> silent;
* interval violates by a *constant* margin -> ``OOB01`` (error; the
  interval bounds are tight for the affine/guard class this walks);
* violation margin expressible purely over scalar parameters ->
  ``OOB02`` (may overflow for some runtime sizes);
* anything involving an unbounded unknown -> silent (lattice top: no
  claim is better than a wrong claim).

Shared accesses need no declared extents — the allocations are static —
so every resolvable shared address is checked against the kernel's
shared segment, and against the *individual* allocation it starts in
(overrunning ``tile`` into the next allocation is a bug even when it
stays inside the segment).
"""

from __future__ import annotations

from repro.isa.instructions import MemSpace
from repro.isa.module import KernelIR
from repro.analysis.dataflow import Access, KernelFacts
from repro.analysis.diagnostics import Diagnostic, make
from repro.analysis.symbolic import Affine, MaybeAffine

#: Extent of one pointer parameter: an element count, or the name of the
#: scalar parameter holding it.
ExtentSpec = int | str
Extents = dict[str, ExtentSpec]


def _split_base(addr: Affine) -> tuple[str, Affine] | None:
    """Split ``ptr:<p> + offset``; None when no unique unit-coeff base."""
    ptrs = [(a, c) for a, c in addr.coeffs if a.startswith("ptr:")]
    if len(ptrs) != 1 or ptrs[0][1] != 1:
        return None
    atom = ptrs[0][0]
    return atom[len("ptr:"):], addr.substitute(atom, Affine())


def _extent_bytes(kernel: KernelIR, param: str,
                  spec: ExtentSpec) -> MaybeAffine:
    decl = next((p for p in kernel.params if p.name == param), None)
    if decl is None or not decl.is_pointer:
        return None
    item = decl.dtype.itemsize
    if isinstance(spec, int):
        return Affine.of_const(spec * item)
    return Affine.of_atom(f"param:{spec}", item)


def _only_param_atoms(expr: Affine) -> bool:
    return all(a.startswith("param:") for a in expr.atoms)


def _check_global(acc: Access, facts: KernelFacts,
                  extents: Extents) -> Diagnostic | None:
    kernel = facts.kernel
    if acc.addr is None:
        return None
    split = _split_base(acc.addr)
    if split is None:
        return None
    param, offset = split
    spec = extents.get(param)
    if spec is None:
        return None
    limit = _extent_bytes(kernel, param, spec)
    if limit is None:
        return None

    env = facts.base_bound_env()
    facts.apply_constraints(env, acc.guards)
    size = acc.dtype.itemsize
    end = offset.shift(size)  # exclusive end of the accessed range

    if env.definitely_ge(offset, Affine.of_const(0)) and \
            env.definitely_le(end, limit):
        return None

    lo = env.lower(offset)
    if lo is not None and lo.is_const and lo.const < 0:
        return make(
            "OOB01", kernel.name, acc.path,
            f"{acc.kind} on '{param}' reaches byte offset {lo.const} "
            f"(offset {offset.pretty()})",
            hint="guard the access so the index stays non-negative",
        )
    over = env.upper(end - limit)  # > 0 means past the end
    if over is not None and over.is_const and over.const > 0:
        return make(
            "OOB01", kernel.name, acc.path,
            f"{acc.kind} on '{param}' runs {over.const} byte(s) past the "
            f"declared extent (offset {offset.pretty()}, "
            f"extent {limit.pretty()} bytes)",
            hint="guard the access against the buffer length "
                 "(e.g. `if i < n:`)",
        )
    if over is not None and not over.is_const and _only_param_atoms(over):
        return make(
            "OOB02", kernel.name, acc.path,
            f"{acc.kind} on '{param}' may exceed the declared extent for "
            f"some parameter values (overrun bound {over.pretty()} bytes)",
            hint="tighten the guard so the worst-case index fits every "
                 "legal parameter value",
        )
    lo_sym = env.lower(offset)
    if lo_sym is not None and not lo_sym.is_const and _only_param_atoms(lo_sym):
        return make(
            "OOB02", kernel.name, acc.path,
            f"{acc.kind} on '{param}' may reach a negative offset for some "
            f"parameter values (lower bound {lo_sym.pretty()} bytes)",
            hint="guard the access so the index stays non-negative",
        )
    return None


def _check_shared(acc: Access, facts: KernelFacts) -> Diagnostic | None:
    kernel = facts.kernel
    total = facts.shared_total
    if acc.addr is None or total == 0:
        return None
    env = facts.base_bound_env()
    facts.apply_constraints(env, acc.guards)
    size = acc.dtype.itemsize
    lo = env.lower(acc.addr)
    hi = env.upper(acc.addr.shift(size))  # exclusive end
    if lo is None or hi is None or not lo.is_const or not hi.is_const:
        return None
    if lo.const < 0 or hi.const > total:
        return make(
            "OOB03", kernel.name, acc.path,
            f"shared {acc.kind} spans bytes [{lo.const}, {hi.const}) but "
            f"the kernel allocates only {total} byte(s) of shared memory",
            hint="size the allocation to the block extent or guard the "
                 "index against the allocation length",
        )
    region = next((r for r in facts.shared_regions
                   if r.base <= lo.const < r.base + r.nbytes), None)
    if region is not None and hi.const > region.base + region.nbytes:
        return make(
            "OOB03", kernel.name, acc.path,
            f"shared {acc.kind} starting in allocation '{region.name}' "
            f"(bytes [{region.base}, {region.base + region.nbytes})) can "
            f"run into the next allocation (reaches byte {hi.const})",
            hint="check the index against this allocation's element count",
        )
    return None


def check_bounds(facts: KernelFacts,
                 extents: Extents | None = None) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    seen: set[str] = set()
    for acc in facts.accesses:
        if acc.space == MemSpace.GLOBAL and extents:
            diag = _check_global(acc, facts, extents)
        elif acc.space == MemSpace.SHARED:
            diag = _check_shared(acc, facts)
        else:
            diag = None
        if diag is not None and diag.path not in seen:
            seen.add(diag.path)
            diags.append(diag)
    return diags
