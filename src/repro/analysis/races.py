"""Shared-memory race and barrier-divergence analyses.

Race model
----------

Threads of one block are unordered between two consecutive barriers, so
two shared-memory accesses can race exactly when (a) they can execute in
the same *barrier interval*, (b) at least one is a plain (non-atomic)
store, and (c) their byte addresses can coincide **for two distinct
threads**.  The dataflow walk already assigned every access a barrier
epoch, guard context and affine address; this pass decides (c)
symbolically:

* side B's thread-varying atoms are renamed (``sr:tid.x`` becomes
  ``sr:tid.x'``) so the two sides model two *different* threads;
* equality guards that pin a thread atom (``if t == 0``) are substituted
  first, so a pinned access is credited to its single thread;
* if the address difference is a constant it answers immediately
  (non-zero: never alias; zero: alias for *any* thread pair, a definite
  race unless both sides were pinned to the same thread);
* otherwise guard-derived interval bounds try to separate the two
  address ranges (this is what proves the classic ``tile[t] = tile[t] +
  tile[t+s]`` reduction safe: the store is guarded by ``t < s`` so its
  range ends below the load's ``t + s`` range);
* a residual difference over only the two thread atoms is solved
  exactly over the block extent — and a "same thread" answer is only
  accepted when the solved/pinned atoms identify the whole thread under
  the declared block geometry (``tile[tid.x]`` still collides across
  ``tid.y`` in a 16x16 block);
* anything still undecided is a *may* race (warning, not error).

Loops are handled by pairing accesses across iterations: for a loop with
an internal barrier, the last interval of iteration *k* is concurrent
with the first interval of iteration *k+1* (wraparound); for a
barrier-free loop every pair of iterations is concurrent.  Loop-carried
atoms are renamed alongside thread atoms for those pairs.

Divergence model mirrors the interpreter: a barrier is an error whenever
its lane mask can be partial — under an ``If`` arm with a thread-variant
condition, or inside a ``While`` whose trip count varies per thread.
"""

from __future__ import annotations

from repro.isa.instructions import MemSpace
from repro.analysis.dataflow import Access, GuardLeaf, KernelFacts
from repro.analysis.diagnostics import Diagnostic, make
from repro.analysis.lints import MIN_EXEC_WIDTH
from repro.analysis.symbolic import Affine, THREAD_ATOMS

SAFE, MAYBE, DEFINITE = 0, 1, 2

#: Cap on the exact-solve enumeration; above this the answer is MAYBE.
_ENUM_LIMIT = 4096


def _base_atom(atom: str) -> str:
    """Strip the cross-thread/iteration rename marker."""
    return atom.rstrip("'")


def _pin_threads(expr: Affine, guards: tuple[GuardLeaf, ...],
                 facts: KernelFacts,
                 rename: dict[str, str] | None) -> tuple[Affine, dict[str, Affine]]:
    """Substitute single-thread equality guards (``t == expr``) into ``expr``.

    Returns the substituted expression plus ``{thread_atom: pinned value}``.
    """
    pins: dict[str, Affine] = {}
    for leaf in guards:
        if leaf.constraint is None or leaf.constraint[0] != "eq":
            continue
        _op, lhs, rhs = leaf.constraint
        if rename:
            lhs, rhs = lhs.rename(rename), rhs.rename(rename)
        diff = lhs - rhs
        variant = [a for a in diff.atoms if facts.is_variant_atom(_base_atom(a))]
        if len(variant) != 1:
            continue
        atom = variant[0]
        c = diff.coeff(atom)
        if c not in (1, -1):
            continue
        rest = diff.substitute(atom, Affine())
        value = rest.scale(-1) if c == 1 else rest
        if any(facts.is_variant_atom(_base_atom(a)) for a in value.atoms):
            continue
        pins[atom] = value
        expr = expr.substitute(atom, value)
    return expr, pins


def _guards_constrain(atom: str, guards: tuple[GuardLeaf, ...],
                      rename: dict[str, str] | None) -> bool:
    """Does any inequality guard mention ``atom``? (eq pins are consumed)."""
    for leaf in guards:
        if leaf.constraint is None or leaf.constraint[0] == "eq":
            continue
        _op, lhs, rhs = leaf.constraint
        atoms = lhs.atoms | rhs.atoms
        if rename:
            atoms = {rename.get(a, a) for a in atoms}
        if atom in atoms:
            return True
    return False


def _pinned_dims(a_pins: dict[str, Affine],
                 b_pins: dict[str, Affine]) -> set[str]:
    """Thread atoms pinned to the same value on both sides."""
    return {atom for atom, val in a_pins.items()
            if b_pins.get(atom + "'") == val}


def _free_dims(determined: set[str], facts: KernelFacts) -> tuple[str, ...]:
    """Block dimensions that still distinguish threads after ``determined``.

    Concluding "addresses only collide for the *same* thread" from the
    solved/pinned atoms is only sound when those atoms identify the whole
    thread: ``tile[tid.x]`` still collides across ``tid.y`` in a 16x16
    block.  Unknown geometry keeps the 1-D reading (matching the rest of
    the analysis, which stays conservative-silent without bounds).
    ``laneid`` repeats every warp, so it only stands in for ``tid.x``
    when the block is no wider than the narrowest sub-group.
    """
    block = facts.bounds.block if facts.bounds else None
    if not block:
        return ()
    if "sr:laneid" in determined and block[0] <= MIN_EXEC_WIDTH:
        determined = determined | {"sr:tid.x"}
    return tuple(f"sr:tid.{axis}" for size, axis in zip(block, "xyz")
                 if size > 1 and f"sr:tid.{axis}" not in determined)


def _unconstrained_cross(free: tuple[str, ...], a: Access, b: Access,
                         rename: dict[str, str]) -> bool:
    """No inequality guard narrows the free dimensions on either side."""
    return not any(
        _guards_constrain(atom, a.guards, None)
        or _guards_constrain(atom + "'", b.guards, rename)
        for atom in free)


def _alias_verdict(a: Access, b: Access, facts: KernelFacts,
                   rename_loops: tuple[int, ...]) -> int:
    """Can ``a`` and ``b`` touch the same byte from two distinct threads?"""
    if a.addr is None or b.addr is None:
        return MAYBE

    renamed_atoms = set(facts.variant_atoms) | set(THREAD_ATOMS)
    for loop_id in rename_loops:
        renamed_atoms |= facts.loop_atoms(loop_id)
    rename = {at: at + "'" for at in renamed_atoms}

    a_expr, a_pins = _pin_threads(a.addr, a.guards, facts, None)
    b_expr, b_pins = _pin_threads(b.addr.rename(rename), b.guards, facts, rename)

    diff = a_expr - b_expr
    if diff.is_const:
        if diff.const != 0:
            return SAFE
        # Same byte for every thread pair.  If both sides run on one pinned
        # thread and the pins agree, it is the *same* thread (program order
        # protects it); different pins or an unpinned side is a real race.
        if a_pins and b_pins:
            a_vals = sorted(a_pins.values(), key=repr)
            b_vals = sorted(b_pins.values(), key=repr)
            if a_vals == b_vals:
                free = _free_dims(_pinned_dims(a_pins, b_pins), facts)
                if not free:
                    return SAFE
                if not _unconstrained_cross(free, a, b, rename):
                    return MAYBE
        return DEFINITE

    # Interval separation under both sides' guards.
    env = facts.base_bound_env(frozenset(rename.values()))
    facts.apply_constraints(env, a.guards)
    facts.apply_constraints(env, b.guards, rename=rename)
    size_a = a.dtype.itemsize
    size_b = b.dtype.itemsize
    if env.definitely_le(a_expr.shift(size_a), b_expr) or \
            env.definitely_le(b_expr.shift(size_b), a_expr):
        return SAFE

    # Exact solve when only the two thread atoms remain.
    variant_left = [at for at in diff.atoms
                    if facts.is_variant_atom(_base_atom(at))]
    uniform_left = [at for at in diff.atoms
                    if not facts.is_variant_atom(_base_atom(at))]
    if uniform_left:
        return MAYBE
    plain = [at for at in variant_left if not at.endswith("'")]
    primed = [at for at in variant_left if at.endswith("'")]
    if len(plain) > 1 or len(primed) > 1:
        return MAYBE
    t1 = plain[0] if plain else None
    t2 = primed[0] if primed else None
    # The exact solve assumes hardware thread atoms ranging over [0, N):
    # derived (op:) variants have no such range.
    for atom in (t1, t2):
        if atom is not None and not _base_atom(atom).startswith("sr:"):
            return MAYBE
    if t1 is not None and t2 is not None \
            and _base_atom(t1) != _base_atom(t2):
        return MAYBE

    n1 = facts.thread_extent(t1) if t1 else None
    n2 = facts.thread_extent(t2) if t2 else None
    c = diff.const
    a1 = diff.coeff(t1) if t1 else 0
    a2 = diff.coeff(t2) if t2 else 0

    # A SAFE answer below is sound even when guards further constrain the
    # thread atoms (restricting the domain cannot create solutions); a
    # DEFINITE answer needs the witness pair to actually execute, so it
    # degrades to MAYBE when inequality guards touch the atoms.
    def _witness(verdict: int) -> int:
        if verdict != DEFINITE:
            return verdict
        for atom in (t1, t2):
            if atom is not None and (
                    _guards_constrain(atom, a.guards, None)
                    or _guards_constrain(atom, b.guards, rename)):
                return MAYBE
        return DEFINITE

    def _pinned_const(pins: dict[str, Affine]) -> int | None:
        for v in pins.values():
            if v.is_const:
                return v.const
        return None

    if t1 is None and t2 is not None:
        # a's thread identity is pinned or absent from the address.
        if a2 == 0 or c % a2:
            return SAFE
        sol = -c // a2
        if not (0 <= sol < n2):
            return SAFE
        pin = _pinned_const(a_pins)
        if pin is not None and sol == pin:
            free = _free_dims(_pinned_dims(a_pins, b_pins)
                              | {_base_atom(t2)}, facts)
            if not free:
                return SAFE  # only colliding pair is the same thread
            if not _unconstrained_cross(free, a, b, rename):
                return MAYBE
        return _witness(DEFINITE)
    if t2 is None and t1 is not None:
        if a1 == 0 or c % a1:
            return SAFE
        sol = -c // a1
        if not (0 <= sol < n1):
            return SAFE
        pin = _pinned_const(b_pins)
        if pin is not None and sol == pin:
            free = _free_dims(_pinned_dims(a_pins, b_pins)
                              | {_base_atom(t1)}, facts)
            if not free:
                return SAFE
            if not _unconstrained_cross(free, a, b, rename):
                return MAYBE
        return _witness(DEFINITE)
    if t1 is None and t2 is None:  # pragma: no cover - diff would be const
        return MAYBE

    same_dims = _pinned_dims(a_pins, b_pins) | {_base_atom(t1 or t2)}
    free = _free_dims(same_dims, facts)

    if a1 == -a2:
        # diff = a1*(t1 - t2) + c : alias needs t1 - t2 == -c/a1.
        if c % a1:
            return SAFE
        m = -c // a1
        if m == 0:
            # Only aliases for t1 == t2 — the same thread, unless another
            # block dimension still distinguishes the pair.
            if not free:
                return SAFE
            if not _unconstrained_cross(free, a, b, rename):
                return MAYBE
            return _witness(DEFINITE)
        if abs(m) >= min(n1, n2):
            return SAFE
        return _witness(DEFINITE)
    # Different coefficients: enumerate one side.
    if a1 == 0 or a2 == 0:  # pragma: no cover - const-diff handled above
        return MAYBE
    limit = min(n2, _ENUM_LIMIT)
    for v2 in range(limit):
        num = -(c + a2 * v2)
        if num % a1:
            continue
        v1 = num // a1
        if not (0 <= v1 < n1):
            continue
        if v1 != v2:
            return _witness(DEFINITE)
        if free:
            if not _unconstrained_cross(free, a, b, rename):
                return MAYBE
            return _witness(DEFINITE)
    return SAFE


def _exclusive_arms(a: Access, b: Access, facts: KernelFacts,
                    cross_loop: int | None) -> bool:
    """True when a uniform branch makes the two accesses mutually exclusive.

    A uniform ``If`` means the whole block takes one arm, so then/else
    accesses never coexist — unless we are pairing *different iterations*
    of a loop the ``If`` sits inside (the condition may flip between
    iterations).
    """
    arms_b = dict(b.branches)
    for if_id, arm in a.branches:
        other = arms_b.get(if_id)
        if other is None or other == arm:
            continue
        if facts.if_conds.get(if_id, True):
            continue  # variant condition: arms run concurrently
        if cross_loop is not None and _if_inside_loop(if_id, cross_loop, a, b):
            continue
        return True
    return False


def _if_inside_loop(if_id: int, loop_id: int, a: Access, b: Access) -> bool:
    # Both accesses carry their loop chain; the If is inside the loop iff
    # the accesses (which are inside the If) list the loop as enclosing.
    return loop_id in a.loops and loop_id in b.loops


def _pair_verdict(a: Access, b: Access, facts: KernelFacts) -> int:
    """Worst alias verdict over every way ``a``/``b`` can be concurrent."""
    worst = SAFE
    if a.epoch == b.epoch and not _exclusive_arms(a, b, facts, None):
        worst = max(worst, _alias_verdict(a, b, facts, ()))
    for loop_id in set(a.loops) & set(b.loops):
        info = facts.loops[loop_id]
        if info.has_barrier:
            wraps = (
                (a.epoch == info.exit_epoch and b.epoch == info.entry_epoch)
                or (b.epoch == info.exit_epoch and a.epoch == info.entry_epoch)
            )
            if not wraps:
                continue
        if _exclusive_arms(a, b, facts, loop_id):
            continue
        worst = max(worst, _alias_verdict(a, b, facts, (loop_id,)))
        if worst == DEFINITE:
            break
    return worst


def _benign_waw(a: Access, b: Access) -> bool:
    """Write-write with the same uniform value on both sides."""
    if not (a.kind == "store" and b.kind == "store"
            and not a.value_variant and not b.value_variant):
        return False
    if a is b:
        # Self-pair: every thread executes the same store of a uniform
        # value, so whatever lands is the one value (float immediates
        # included, which have no affine value_expr).
        return True
    return a.value_expr is not None and a.value_expr == b.value_expr


def check_races(facts: KernelFacts) -> list[Diagnostic]:
    kernel = facts.kernel.name
    bounds = facts.bounds
    if bounds and bounds.block and tuple(bounds.block) == (1, 1, 1):
        return []  # a single thread per block cannot race on shared memory

    shared = [acc for acc in facts.accesses if acc.space == MemSpace.SHARED]
    diags: list[Diagnostic] = []
    seen: set[tuple[str, str]] = set()
    for i, a in enumerate(shared):
        for b in shared[i:]:
            if a is b and a.kind != "store":
                continue
            if a.kind == "load" and b.kind == "load":
                continue
            if a.kind == "atomic" and b.kind == "atomic":
                continue  # atomics are ordered against each other
            if a.kind != "store" and b.kind != "store":
                continue  # atomic/load mix without a plain store is ordered
            verdict = _pair_verdict(a, b, facts)
            if verdict == SAFE:
                continue
            key = (a.path, b.path)
            if key in seen:
                continue
            seen.add(key)
            what = f"{a.kind} at {a.path} and {b.kind} at {b.path}"
            addr = a.addr.pretty() if a.addr is not None else "<unknown>"
            if verdict == DEFINITE and not _benign_waw(a, b):
                diags.append(make(
                    "RACE01", kernel, a.path,
                    f"shared-memory race: {what} can touch the same address "
                    f"({addr}) from two threads in the same barrier interval",
                    hint="separate the accesses with barrier() or make the "
                         "index injective per thread",
                ))
            else:
                note = " (write-write of an identical uniform value)" \
                    if _benign_waw(a, b) else ""
                diags.append(make(
                    "RACE02", kernel, a.path,
                    f"possible shared-memory race: {what} may alias "
                    f"({addr}) within one barrier interval{note}",
                    hint="add a barrier() between the accesses or prove the "
                         "indices disjoint with a guard the analysis can see",
                ))
    return diags


def check_divergence(facts: KernelFacts) -> list[Diagnostic]:
    kernel = facts.kernel.name
    diags: list[Diagnostic] = []
    for site in facts.barriers:
        if site.in_variant_if:
            diags.append(make(
                "DIV01", kernel, site.path,
                "barrier() under a condition that varies per thread: "
                "threads that skip the branch never arrive",
                hint="hoist the barrier out of the divergent branch",
            ))
        elif site.in_variant_loop:
            diags.append(make(
                "DIV02", kernel, site.path,
                "barrier() inside a loop whose trip count varies per "
                "thread: threads that exit early stop arriving",
                hint="make the loop bound uniform across the block "
                     "(e.g. iterate to the block-wide maximum)",
            ))
    return diags
