"""Affine symbolic values for the kernelsan analyses.

The analyses reason about addresses and guard conditions as *affine
expressions* over a small set of atoms::

    expr ::= c0 + c1*a1 + c2*a2 + ...      (integer coefficients)

Atoms are opaque strings minted by the dataflow walk:

* ``sr:tid.x`` ... — hardware special registers;
* ``param:n`` — scalar kernel parameters;
* ``ptr:x`` — pointer parameter base addresses;
* ``op:<reg>#<k>`` — any definition the walk cannot express affinely
  (loads, float math, products of two non-constants, loop-carried
  values); each definition site gets a fresh serial, so two different
  unknown values never compare equal.

Anything non-affine is represented as ``None`` (the lattice top); every
helper treats ``None`` conservatively.  This is deliberately the same
shape real bounds checkers use at the LLVM layer: precise for the affine
index arithmetic GPU kernels are made of, silent for everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Atoms whose value differs between threads of one block.
THREAD_ATOMS = frozenset({"sr:tid.x", "sr:tid.y", "sr:tid.z", "sr:laneid"})


@dataclass(frozen=True)
class Affine:
    """``const + sum(coeffs[atom] * atom)`` with integer coefficients."""

    const: int = 0
    coeffs: tuple[tuple[str, int], ...] = ()  # sorted, zero-free

    # -- constructors -------------------------------------------------------

    @staticmethod
    def of_const(value: int) -> "Affine":
        return Affine(const=int(value))

    @staticmethod
    def of_atom(atom: str, coeff: int = 1) -> "Affine":
        if coeff == 0:
            return Affine()
        return Affine(const=0, coeffs=((atom, int(coeff)),))

    @staticmethod
    def make(const: int, coeffs: dict[str, int]) -> "Affine":
        packed = tuple(sorted((a, c) for a, c in coeffs.items() if c != 0))
        return Affine(const=int(const), coeffs=packed)

    # -- views ---------------------------------------------------------------

    @property
    def coeff_map(self) -> dict[str, int]:
        return dict(self.coeffs)

    @property
    def atoms(self) -> frozenset[str]:
        return frozenset(a for a, _c in self.coeffs)

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def coeff(self, atom: str) -> int:
        return self.coeff_map.get(atom, 0)

    def thread_atoms(self, extra_variant: frozenset[str] = frozenset()) -> frozenset[str]:
        """Atoms of this expression that vary across threads."""
        variant = THREAD_ATOMS | extra_variant
        return frozenset(a for a in self.atoms if a in variant)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Affine") -> "Affine":
        coeffs = self.coeff_map
        for atom, c in other.coeffs:
            coeffs[atom] = coeffs.get(atom, 0) + c
        return Affine.make(self.const + other.const, coeffs)

    def __sub__(self, other: "Affine") -> "Affine":
        return self + other.scale(-1)

    def scale(self, k: int) -> "Affine":
        if k == 0:
            return Affine()
        return Affine.make(self.const * k,
                           {a: c * k for a, c in self.coeffs})

    def shift(self, delta: int) -> "Affine":
        return Affine.make(self.const + delta, self.coeff_map)

    def rename(self, mapping: dict[str, str]) -> "Affine":
        """Substitute atom names (used to split loop iterations/threads)."""
        coeffs: dict[str, int] = {}
        for atom, c in self.coeffs:
            new = mapping.get(atom, atom)
            coeffs[new] = coeffs.get(new, 0) + c
        return Affine.make(self.const, coeffs)

    def substitute(self, atom: str, value: "Affine") -> "Affine":
        """Replace ``atom`` with an affine ``value``."""
        k = self.coeff(atom)
        if k == 0:
            return self
        rest = Affine.make(self.const,
                           {a: c for a, c in self.coeffs if a != atom})
        return rest + value.scale(k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [str(self.const)] if self.const or not self.coeffs else []
        for atom, c in self.coeffs:
            parts.append(f"{'+' if c >= 0 else '-'}{abs(c)}*{atom}")
        return "(" + " ".join(parts) + ")"

    def pretty(self) -> str:
        """Human-oriented rendering for diagnostics (strips atom kinds)."""
        terms: list[str] = []
        for atom, c in self.coeffs:
            name = atom.split(":", 1)[-1].split("#", 1)[0]
            if c == 1:
                terms.append(name)
            elif c == -1:
                terms.append(f"-{name}")
            else:
                terms.append(f"{c}*{name}")
        if self.const or not terms:
            terms.append(str(self.const))
        out = " + ".join(terms)
        return out.replace("+ -", "- ")


MaybeAffine = Affine | None  # None == lattice top (unknown)


def add(a: MaybeAffine, b: MaybeAffine) -> MaybeAffine:
    if a is None or b is None:
        return None
    return a + b


def sub(a: MaybeAffine, b: MaybeAffine) -> MaybeAffine:
    if a is None or b is None:
        return None
    return a - b


def mul(a: MaybeAffine, b: MaybeAffine) -> MaybeAffine:
    """Affine product — defined only when one side is a constant."""
    if a is None or b is None:
        return None
    if a.is_const:
        return b.scale(a.const)
    if b.is_const:
        return a.scale(b.const)
    return None


# ---------------------------------------------------------------------------
# Bound environments
# ---------------------------------------------------------------------------


@dataclass
class BoundEnv:
    """Per-atom inclusive bounds, themselves affine (or unknown).

    Bounds come from two places: the *base ranges* of hardware atoms
    (``tid.x`` in ``[0, ntid.x-1]``, refined by launch bounds) and the
    dominating guard constraints collected by the dataflow walk
    (``t < s`` gives ``t <= s - 1``).
    """

    lo: dict[str, Affine] = field(default_factory=dict)
    hi: dict[str, Affine] = field(default_factory=dict)

    def clone(self) -> "BoundEnv":
        return BoundEnv(dict(self.lo), dict(self.hi))

    def set_lo(self, atom: str, bound: Affine) -> None:
        # Keep the *tighter* (larger) lower bound when both are constant.
        cur = self.lo.get(atom)
        if cur is not None and cur.is_const and bound.is_const:
            if cur.const >= bound.const:
                return
        self.lo[atom] = bound

    def set_hi(self, atom: str, bound: Affine) -> None:
        cur = self.hi.get(atom)
        if cur is not None and cur.is_const and bound.is_const:
            if cur.const <= bound.const:
                return
        self.hi[atom] = bound

    # -- bound computation ---------------------------------------------------

    _MAX_STEPS = 24  # substitution steps; guards rarely chain deeper

    def upper(self, expr: MaybeAffine) -> MaybeAffine:
        """An affine upper bound of ``expr`` (inclusive), or unknown."""
        return self._bound(expr, want_hi=True)

    def lower(self, expr: MaybeAffine) -> MaybeAffine:
        return self._bound(expr, want_hi=False)

    def _bound(self, expr: MaybeAffine, want_hi: bool) -> MaybeAffine:
        if expr is None:
            return None
        cur = expr
        for _step in range(self._MAX_STEPS):
            if cur.is_const:
                return cur
            # Prefer single substitutions that shrink the atom set: a
            # guard bound like ``t <= s - 1`` must cancel against an
            # existing ``-s`` term *before* ``s`` itself is bounded away,
            # or the relation between the two is lost.
            reduced = False
            for atom, c in cur.coeffs:
                # +coeff wants the atom's hi for an upper bound, lo for a
                # lower bound; -coeff swaps them.
                table = (self.hi if (c > 0) == want_hi else self.lo)
                bound = table.get(atom)
                if bound is None:
                    continue
                candidate = cur.substitute(atom, bound)
                if len(candidate.coeffs) < len(cur.coeffs):
                    cur = candidate
                    reduced = True
                    break
            if reduced:
                continue
            # No cancelling substitution: bound every atom at once
            # (handles chains like tid -> ntid-1 -> const).
            out = Affine.of_const(cur.const)
            progressed = False
            for atom, c in cur.coeffs:
                table = (self.hi if (c > 0) == want_hi else self.lo)
                bound = table.get(atom)
                if bound is None:
                    out = out + Affine.of_atom(atom, c)
                else:
                    out = out + bound.scale(c)
                    progressed = True
            if not progressed:
                return cur
            cur = out
        return cur

    # -- comparisons ---------------------------------------------------------

    def definitely_le(self, a: MaybeAffine, b: MaybeAffine) -> bool:
        """Provable ``a <= b`` for all values within bounds."""
        hi = self.upper(sub(a, b))
        return hi is not None and hi.is_const and hi.const <= 0

    def definitely_lt(self, a: MaybeAffine, b: MaybeAffine) -> bool:
        hi = self.upper(sub(a, b))
        return hi is not None and hi.is_const and hi.const < 0

    def definitely_ge(self, a: MaybeAffine, b: MaybeAffine) -> bool:
        lo = self.lower(sub(a, b))
        return lo is not None and lo.is_const and lo.const >= 0
