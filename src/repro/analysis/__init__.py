"""kernelsan — static analysis over the shared kernel IR.

Because every programming model in the compatibility matrix lowers
through one :class:`~repro.isa.module.ModuleIR`, a sanitizer at this
layer covers all of them at once: races, barrier divergence, memory
bounds, shared-memory hygiene and portability hazards are diagnosed the
same way regardless of which frontend produced the kernel — the same
argument the paper makes for hanging compatibility tooling off a common
mid-level IR.

Entry points:

* :func:`analyze_kernel` / :func:`analyze_module` — run the passes;
* :class:`AnalysisOptions` — launch bounds, buffer extents, pass subset;
* :mod:`repro.analysis.crosscheck` — differential execution harness
  that validates static verdicts against interpreter schedules;
* :mod:`repro.analysis.transval` — translation validation (``TV01``–
  ``TV06``) for the source-to-source routes;
* :mod:`repro.analysis.routes_evidence` — static route-evidence
  derivation of Figure 1 and the paper cross-check (``RE01``–``RE03``);
* :mod:`repro.analysis.tracesan` — static translation validation of
  trace-compiled programs (``TC01``–``TC06``), proving each generated
  program equivalent to its kernel IR without executing either;
* ``Toolchain.compile(..., sanitize=True)`` and the ``gpu-compat lint``
  CLI are the integrated front doors.
"""

from repro.analysis.dataflow import LaunchBounds, analyze_dataflow
from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    LintReport,
    Severity,
)
from repro.analysis.sanitizer import (
    PASSES,
    AnalysisOptions,
    analyze_kernel,
    analyze_module,
)
from repro.analysis.transval import (
    kernel_signature,
    validate_all,
    validate_translation,
    validate_translator,
)

__all__ = [
    "AnalysisOptions",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "LaunchBounds",
    "LintReport",
    "PASSES",
    "Severity",
    "analyze_dataflow",
    "analyze_kernel",
    "analyze_module",
    "kernel_signature",
    "validate_all",
    "validate_translation",
    "validate_translator",
]
