"""kernelsan — static analysis over the shared kernel IR.

Because every programming model in the compatibility matrix lowers
through one :class:`~repro.isa.module.ModuleIR`, a sanitizer at this
layer covers all of them at once: races, barrier divergence, memory
bounds, shared-memory hygiene and portability hazards are diagnosed the
same way regardless of which frontend produced the kernel — the same
argument the paper makes for hanging compatibility tooling off a common
mid-level IR.

Entry points:

* :func:`analyze_kernel` / :func:`analyze_module` — run the passes;
* :class:`AnalysisOptions` — launch bounds, buffer extents, pass subset;
* :mod:`repro.analysis.crosscheck` — differential execution harness
  that validates static verdicts against interpreter schedules;
* ``Toolchain.compile(..., sanitize=True)`` and the ``gpu-compat lint``
  CLI are the integrated front doors.
"""

from repro.analysis.dataflow import LaunchBounds, analyze_dataflow
from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    LintReport,
    Severity,
)
from repro.analysis.sanitizer import (
    PASSES,
    AnalysisOptions,
    analyze_kernel,
    analyze_module,
)

__all__ = [
    "AnalysisOptions",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "LaunchBounds",
    "LintReport",
    "PASSES",
    "Severity",
    "analyze_dataflow",
    "analyze_kernel",
    "analyze_module",
]
