"""kernelsan: the static-analysis driver.

Runs the independent analysis passes over kernels/modules and collects
their structured :class:`~repro.analysis.diagnostics.Diagnostic` objects
into a :class:`~repro.analysis.diagnostics.LintReport`.  Passes share
one symbolic dataflow walk per kernel (:mod:`.dataflow`) and never
raise on findings — a kernel with five problems yields five
diagnostics.

Pass registry:

======== ==================================================== ==========
name     analysis                                              codes
======== ==================================================== ==========
races    shared-memory races within one barrier interval       RACE01/02
diverge  barriers under thread-divergent control flow          DIV01/02
bounds   global/shared out-of-bounds via interval analysis     OOB01-03
shared   uninitialized / dead shared memory                    UNINIT01,
                                                               DEAD01
port     portability lints (shuffle width, CAS loops,          PORT01-03
         shared-memory capacity)
======== ==================================================== ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.isa.module import KernelIR, ModuleIR
from repro.isa.verifier import verify_kernel
from repro.analysis.bounds import Extents, check_bounds
from repro.analysis.dataflow import KernelFacts, LaunchBounds, analyze_dataflow
from repro.analysis.diagnostics import Diagnostic, LintReport
from repro.analysis.lints import check_portability, check_shared_hygiene
from repro.analysis.races import check_divergence, check_races

#: One analysis pass: ``(facts, options) -> [diagnostics]``.
AnalysisPass = Callable[[KernelFacts, "AnalysisOptions"], list[Diagnostic]]

PASSES: dict[str, AnalysisPass] = {
    "races": lambda facts, opts: check_races(facts),
    "diverge": lambda facts, opts: check_divergence(facts),
    "bounds": lambda facts, opts: check_bounds(facts, opts.extents),
    "shared": lambda facts, opts: check_shared_hygiene(facts),
    "port": lambda facts, opts: check_portability(facts),
}


@dataclass
class AnalysisOptions:
    """What to analyze and under which assumptions.

    Attributes:
        bounds: Launch geometry assumed by the interval analyses; omit
            for worst-case device limits (block up to 1024 threads).
        extents: Pointer-parameter buffer extents for the global OOB
            check, ``{param: element_count or scalar_param_name}``.
            Global OOB is skipped for parameters without extents.
        passes: Subset of :data:`PASSES` names to run (all by default).
        verify: Run the IR verifier first; analyses assume well-formed
            IR, so this is on unless the caller already verified.
    """

    bounds: LaunchBounds | None = None
    extents: Extents | None = None
    passes: tuple[str, ...] = tuple(PASSES)
    verify: bool = True


def analyze_kernel(kernel: KernelIR,
                   options: AnalysisOptions | None = None) -> list[Diagnostic]:
    """Run the selected kernelsan passes over one kernel."""
    opts = options or AnalysisOptions()
    if opts.verify:
        verify_kernel(kernel)
    facts = analyze_dataflow(kernel, opts.bounds)
    diags: list[Diagnostic] = []
    for name in opts.passes:
        diags.extend(PASSES[name](facts, opts))
    diags.sort(key=lambda d: (-int(d.severity), d.code, d.path))
    return diags


def analyze_module(module: ModuleIR,
                   options: AnalysisOptions | None = None,
                   per_kernel_extents: dict[str, Extents] | None = None
                   ) -> LintReport:
    """Run kernelsan over every kernel of a module.

    ``per_kernel_extents`` overrides ``options.extents`` for the named
    kernels (different kernels usually bind different buffers).
    """
    opts = options or AnalysisOptions()
    report = LintReport()
    for kernel in module:
        k_opts = opts
        if per_kernel_extents and kernel.name in per_kernel_extents:
            k_opts = AnalysisOptions(
                bounds=opts.bounds,
                extents=per_kernel_extents[kernel.name],
                passes=opts.passes,
                verify=opts.verify,
            )
        report.extend(analyze_kernel(kernel, k_opts))
    return report
