"""Static route-evidence analysis: prove Figure 1 without running probes.

The empirical pipeline (:mod:`repro.core.matrix`) *executes* every probe
suite against simulated devices.  This module derives the same 51-cell
matrix **statically**: for every registered route it inspects the
constructed chain — toolchain capabilities, translator tag maps, layered
backends, Python package feature sets — and computes which probes are
*provably* supported, without compiling or launching anything.

The per-probe requirement tables below are the analyzer's model of the
probe suites: the exact feature tags each probe places on its
translation units (hardware tags included for documentation; they never
gate a capability check, mirroring
:meth:`~repro.compilers.toolchain.Toolchain.supports_feature`).  Layered
models (Kokkos, Alpaka) lower to their backend model's tags, so their
tables are keyed by ``(suite, backend model)``; Python packages gate on
their own ``py:*`` feature set.

A probe is provably supported when

1. the chain's toolchain has a :class:`Capability` for the (model,
   language) it will be asked to compile — *after* translation, for
   translated routes;
2. the device ISA is among that capability's targets;
3. every non-hardware requirement tag survives the chain: translated
   routes map tags through the translator's ``TAG_MAP`` (an explicit
   ``None`` rejection fails the probe), layered routes use the backend
   model's tags, and the final tags must all be capability features;
4. the layer exposes the API at all (``FLCL.UNSUPPORTED_PROBES``).

Provable coverage then runs through the unmodified §3 classifier and
the same cell aggregation as the empirical matrix, and the result is
cross-checked against the reconstructed Figure 1
(:data:`repro.data.paper_matrix.PAPER_MATRIX`): an undocumented primary
contradiction is an ``RE01`` error, a dual-rating disagreement on a
paper-annotated cell is an ``RE02`` warning, and a divergence listed in
:data:`repro.data.paper_matrix.KNOWN_DIVERGENCES` is reported — never
silently dropped — as ``RE03`` info.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import LintReport, make
from repro.compilers.features import HW_FEATURES
from repro.core.classifier import (
    DEFAULT_THRESHOLDS,
    Thresholds,
    classify_route,
)
from repro.core.matrix import aggregate_primary, aggregate_secondary
from repro.core.probes import PROBE_SUITES
from repro.core.routes import Route, all_routes
from repro.data.paper_matrix import KNOWN_DIVERGENCES, PAPER_MATRIX
from repro.enums import Language, Model, SupportCategory, Vendor, all_cells
from repro.gpu.runtime import System

_HW_KERNEL = frozenset({"atomics", "barrier", "shared_memory"})


def _u(*sets) -> frozenset[str]:
    out: set[str] = set()
    for s in sets:
        out |= set(s) if not isinstance(s, str) else {s}
    return frozenset(out)


_OMP_TARGET = frozenset({"omp:target", "omp:teams", "omp:distribute",
                         "omp:parallel_for", "omp:map"})
_ACC_PARALLEL = frozenset({"acc:parallel", "acc:loop", "acc:copyin_copyout"})

#: Source-model feature tags each direct-suite probe puts on its units.
PROBE_REQUIREMENTS: dict[str, dict[str, frozenset[str]]] = {
    "cuda_cpp": {
        "probe_kernels": _u({"cuda:kernels", "cuda:memcpy"}),
        "probe_streams": _u({"cuda:kernels", "cuda:memcpy", "cuda:streams"}),
        "probe_events": _u({"cuda:kernels", "cuda:memcpy", "cuda:events"}),
        "probe_managed": _u({"cuda:kernels", "cuda:memcpy",
                             "cuda:managed_memory"}),
        "probe_libraries": _u({"cuda:kernels", "cuda:memcpy",
                               "cuda:libraries"}, _HW_KERNEL),
        "probe_graphs": _u({"cuda:kernels", "cuda:memcpy", "cuda:graphs"}),
        "probe_cooperative": _u({"cuda:kernels", "cuda:memcpy",
                                 "cuda:cooperative_groups"}),
    },
    "cuda_fortran": {
        "probe_kernels": _u({"cuf:kernels", "cuda:memcpy"}),
        "probe_cuf_kernels": _u({"cuf:kernels", "cuf:cuf_kernels",
                                 "cuda:memcpy"}),
        "probe_streams": _u({"cuf:kernels", "cuda:memcpy", "cuda:streams"}),
        "probe_events": _u({"cuf:kernels", "cuda:memcpy", "cuda:events"}),
    },
    "hip_cpp": {
        "probe_kernels": _u({"hip:kernels", "hip:memcpy"}),
        "probe_streams": _u({"hip:kernels", "hip:memcpy", "hip:streams"}),
        "probe_events": _u({"hip:kernels", "hip:memcpy", "hip:events"}),
        "probe_libraries": _u({"hip:kernels", "hip:memcpy",
                               "hip:libraries"}, _HW_KERNEL),
        "probe_graphs": _u({"hip:kernels", "hip:memcpy", "hip:graphs"}),
    },
    "hip_fortran": {
        "probe_kernels": _u({"hip:kernels", "hip:memcpy"}),
        "probe_streams": _u({"hip:kernels", "hip:memcpy", "hip:streams"}),
        "probe_events": _u({"hip:kernels", "hip:memcpy", "hip:events"}),
        "probe_libraries": _u({"hip:kernels", "hip:memcpy",
                               "hip:libraries"}, _HW_KERNEL),
        "probe_graphs": _u({"hip:kernels", "hip:memcpy", "hip:graphs"}),
    },
    "sycl_cpp": {
        "probe_queues": _u({"sycl:queues", "sycl:usm"}),
        "probe_buffers": _u({"sycl:queues", "sycl:buffers",
                             "sycl:accessors"}),
        "probe_nd_range": _u({"sycl:queues", "sycl:usm",
                              "sycl:nd_range"}, _HW_KERNEL),
        "probe_usm_shared": _u({"sycl:queues", "sycl:usm"}),
        "probe_reduction": _u({"sycl:queues", "sycl:reduction"}, _HW_KERNEL),
        "probe_events": _u({"sycl:queues"}),
    },
    "openmp": {
        "probe_target": _OMP_TARGET,
        "probe_reduction": _u(_OMP_TARGET, {"omp:reduction"}, _HW_KERNEL),
        "probe_collapse": _u(_OMP_TARGET, {"omp:collapse"}),
        "probe_simd": _u(_OMP_TARGET, {"omp:simd"}),
        "probe_loop_construct": _u({"omp:loop", "omp:map", "omp:target",
                                    "omp:teams"}),
        "probe_metadirective": _u({"omp:metadirective", "omp:target",
                                   "omp:teams", "omp:distribute",
                                   "omp:parallel_for"}),
        "probe_declare_variant": _u(_OMP_TARGET, {"omp:declare_variant"}),
        "probe_usm": _u(_OMP_TARGET, {"omp:usm"}),
        "probe_assume": _u(_OMP_TARGET, {"omp:assume"}),
        "probe_masked": _u({"omp:masked", "omp:target", "omp:teams"}),
    },
    "openacc": {
        "probe_parallel": _ACC_PARALLEL,
        "probe_kernels_construct": _u({"acc:kernels", "acc:copyin_copyout"}),
        "probe_data_region": _ACC_PARALLEL,
        "probe_reduction": _u(_ACC_PARALLEL, {"acc:reduction"}, _HW_KERNEL),
        "probe_gang_vector": _u(_ACC_PARALLEL, {"acc:gang_worker_vector"}),
        "probe_async_wait": _u(_ACC_PARALLEL, {"acc:async"}),
        "probe_serial": _u({"acc:serial", "acc:copyin_copyout"}),
    },
    "stdpar_cpp": {
        "probe_for_each": _u({"stdpar:for_each"}),
        "probe_transform": _u({"stdpar:transform"}),
        "probe_reduce": _u({"stdpar:reduce"}, _HW_KERNEL),
        "probe_transform_reduce": _u({"stdpar:transform_reduce"}, _HW_KERNEL),
        "probe_scan": _u({"stdpar:scan"}),
        "probe_sort": _u({"stdpar:sort"}),
        "probe_std_namespace": _u({"stdpar:for_each",
                                   "stdpar:std_namespace"}),
    },
    "stdpar_fortran": {
        "probe_do_concurrent": _u({"dc:do_concurrent"}),
        "probe_locality": _u({"dc:do_concurrent",
                              "dc:locality_specifiers"}),
        "probe_reduce": _u({"dc:do_concurrent", "dc:reduce"}, _HW_KERNEL),
    },
}

#: Backend-model tags the layered suites (Kokkos, Alpaka) lower to.
LAYERED_PROBE_REQUIREMENTS: dict[tuple[str, Model],
                                 dict[str, frozenset[str]]] = {
    ("kokkos", Model.CUDA): {
        "probe_range_for": _u({"cuda:kernels", "cuda:memcpy"}),
        "probe_mdrange": _u({"cuda:kernels", "cuda:memcpy"}),
        "probe_teams": _u({"cuda:kernels", "cuda:memcpy"}, _HW_KERNEL),
        "probe_reduce": _u({"cuda:kernels", "cuda:memcpy"}, _HW_KERNEL),
        "probe_scan": _u({"cuda:kernels", "cuda:memcpy"}),
        "probe_views": frozenset(),
    },
    ("kokkos", Model.HIP): {
        "probe_range_for": _u({"hip:kernels", "hip:memcpy"}),
        "probe_mdrange": _u({"hip:kernels", "hip:memcpy"}),
        "probe_teams": _u({"hip:kernels", "hip:memcpy"}, _HW_KERNEL),
        "probe_reduce": _u({"hip:kernels", "hip:memcpy"}, _HW_KERNEL),
        "probe_scan": _u({"hip:kernels", "hip:memcpy"}),
        "probe_views": frozenset(),
    },
    ("kokkos", Model.OPENMP): {
        "probe_range_for": _OMP_TARGET,
        "probe_mdrange": _u(_OMP_TARGET, {"omp:collapse"}),
        "probe_teams": _u({"omp:target", "omp:teams",
                           "omp:parallel_for"}, _HW_KERNEL),
        "probe_reduce": _u({"omp:target", "omp:teams", "omp:parallel_for",
                            "omp:map"}, _HW_KERNEL),
        "probe_scan": _OMP_TARGET,
        "probe_views": frozenset(),
    },
    ("kokkos", Model.SYCL): {
        "probe_range_for": _u({"sycl:queues"}),
        "probe_mdrange": _u({"sycl:queues", "sycl:nd_range"}),
        "probe_teams": _u({"sycl:queues", "sycl:nd_range"}, _HW_KERNEL),
        "probe_reduce": _u({"sycl:queues", "sycl:nd_range"}, _HW_KERNEL),
        "probe_scan": _u({"sycl:queues"}),
        "probe_views": frozenset(),
    },
    ("alpaka", Model.CUDA): {
        "probe_exec": _u({"cuda:kernels", "cuda:memcpy"}),
        "probe_workdiv": _u({"cuda:kernels", "cuda:memcpy"}),
        "probe_buffers": _u({"cuda:kernels", "cuda:memcpy"}),
        "probe_reduce": _u({"cuda:kernels", "cuda:memcpy"}, _HW_KERNEL),
    },
    ("alpaka", Model.HIP): {
        "probe_exec": _u({"hip:kernels", "hip:memcpy"}),
        "probe_workdiv": _u({"hip:kernels", "hip:memcpy"}),
        "probe_buffers": _u({"hip:kernels", "hip:memcpy"}),
        "probe_reduce": _u({"hip:kernels", "hip:memcpy"}, _HW_KERNEL),
    },
    ("alpaka", Model.SYCL): {
        "probe_exec": _u({"sycl:queues", "sycl:nd_range"}),
        "probe_workdiv": _u({"sycl:queues", "sycl:nd_range"}),
        "probe_buffers": _u({"sycl:queues", "sycl:nd_range"}),
        "probe_reduce": _u({"sycl:queues", "sycl:nd_range"}, _HW_KERNEL),
    },
}

#: ``py:*`` feature tags each Python-suite probe demands of the package.
PYTHON_PROBE_REQUIREMENTS: dict[str, frozenset[str]] = {
    "probe_ufuncs": _u({"py:ufuncs", "py:numpy_interop"}),
    "probe_custom_kernel": _u({"py:custom_kernels"}),
    "probe_reduction": _u({"py:reduction"}),
    "probe_streams": _u({"py:streams"}),
    "probe_blas": _u({"py:blas", "py:numpy_interop"}),
    "probe_numpy_interop": _u({"py:numpy_interop"}),
}


def check_tables() -> None:
    """Fail loudly if the requirement tables drift from the probe suites.

    Every probe of every suite the Figure-1 route registry uses must
    have a requirement entry; a missing or stale entry would silently
    skew derived coverage, so this raises instead of skipping.  Suites
    registered only by the extension layer (RAJA, OpenCL — outside the
    51-cell matrix) are not audited.
    """
    used = {route.probe_suite for route in all_routes()}
    for suite, probes in PROBE_SUITES.items():
        if suite not in used:
            continue
        methods = {p.method for p in probes}
        if suite == "python":
            covered = set(PYTHON_PROBE_REQUIREMENTS)
        elif suite in ("kokkos", "alpaka"):
            tables = [t for (s, _), t in LAYERED_PROBE_REQUIREMENTS.items()
                      if s == suite]
            covered = set.intersection(*(set(t) for t in tables))
        else:
            covered = set(PROBE_REQUIREMENTS.get(suite, {}))
        if methods != covered:
            raise RuntimeError(
                f"route-evidence requirement table for suite '{suite}' is "
                f"out of date: suite probes {sorted(methods)} vs table "
                f"entries {sorted(covered)}"
            )


# ---------------------------------------------------------------------------
# Per-route derivation
# ---------------------------------------------------------------------------


@dataclass
class RouteEvidence:
    """What is statically provable about one route."""

    route: Route
    #: probe method -> "" when provably supported, else the reason the
    #: chain cannot support it.
    probe_reasons: dict[str, str]
    category: SupportCategory

    @property
    def n_provable(self) -> int:
        return sum(1 for r in self.probe_reasons.values() if not r)

    @property
    def coverage(self) -> float:
        return self.n_provable / len(self.probe_reasons)

    def failures(self) -> dict[str, str]:
        return {m: r for m, r in self.probe_reasons.items() if r}


@dataclass
class DerivedCell:
    """One statically derived Figure 1 cell."""

    vendor: Vendor
    model: Model
    language: Language
    evidence: list[RouteEvidence] = field(default_factory=list)

    def _pairs(self) -> list[tuple[Route, SupportCategory]]:
        return [(e.route, e.category) for e in self.evidence]

    @property
    def primary(self) -> SupportCategory:
        return aggregate_primary(self._pairs())

    @property
    def secondary(self) -> SupportCategory | None:
        return aggregate_secondary(self._pairs())


def _capability_reasons(toolchain, model: Model, language: Language,
                        isa, tags: frozenset[str]) -> str:
    """Mirror the three compile gates; "" when all pass."""
    cap = toolchain.capability(model, language)
    if cap is None:
        return (f"toolchain {toolchain.name} does not compile "
                f"{model.value} {language.value}")
    if isa not in cap.targets:
        return (f"toolchain {toolchain.name} cannot emit {isa.value} for "
                f"{model.value} {language.value}")
    missing = sorted(t for t in tags
                     if t not in HW_FEATURES and t not in cap.features)
    if missing:
        return (f"toolchain {toolchain.name} lacks feature(s) "
                f"{', '.join(missing)}")
    return ""


def _derive_offload(rt, route: Route, isa) -> dict[str, str]:
    """Direct and translated routes: translator maps, toolchain gates."""
    table = PROBE_REQUIREMENTS[route.probe_suite]
    translator = rt.translator
    model = translator.TARGET_MODEL if translator is not None else rt.MODEL
    reasons: dict[str, str] = {}
    for probe in PROBE_SUITES[route.probe_suite]:
        reqs = table[probe.method]
        if translator is not None:
            mapped: set[str] = set()
            rejected: list[str] = []
            for tag in sorted(reqs):
                if tag in HW_FEATURES or tag in translator.PASSTHROUGH:
                    continue
                image = translator.TAG_MAP.get(tag)
                if image is None:
                    rejected.append(tag)
                else:
                    mapped.update(image)
            if rejected:
                reasons[probe.method] = (
                    f"translator {translator.NAME} does not translate "
                    f"{', '.join(rejected)}")
                continue
            tags = frozenset(mapped)
        else:
            tags = reqs
        reasons[probe.method] = _capability_reasons(
            rt.toolchain, model, rt.language, isa, tags)
    return reasons


def _derive_layered(rt, route: Route, isa) -> dict[str, str]:
    """Kokkos/Alpaka: the backend runtime's model and toolchain gate."""
    backend = rt._rt
    table = LAYERED_PROBE_REQUIREMENTS[(route.probe_suite, backend.MODEL)]
    unsupported = getattr(rt, "UNSUPPORTED_PROBES", frozenset())
    reasons: dict[str, str] = {}
    for probe in PROBE_SUITES[route.probe_suite]:
        if probe.method in unsupported:
            reasons[probe.method] = (
                f"{type(rt).__name__} does not expose this API")
            continue
        reasons[probe.method] = _capability_reasons(
            backend.toolchain, backend.MODEL, backend.language, isa,
            table[probe.method])
    return reasons


def _derive_python(rt, route: Route) -> dict[str, str]:
    """Python packages gate every API call on their own feature set."""
    reasons: dict[str, str] = {}
    for probe in PROBE_SUITES[route.probe_suite]:
        missing = sorted(PYTHON_PROBE_REQUIREMENTS[probe.method]
                         - set(rt.features))
        reasons[probe.method] = (
            "" if not missing
            else f"package {rt.name} lacks feature(s) {', '.join(missing)}")
    return reasons


def derive_route(route: Route, system: System,
                 thresholds: Thresholds = DEFAULT_THRESHOLDS) -> RouteEvidence:
    """Statically derive one route's provable probe support + category."""
    from repro.models.alpaka import Alpaka
    from repro.models.kokkos import Kokkos
    from repro.models.pymodels import PyPackage

    device = system.device(route.vendor)
    rt = route.chain(device)
    if isinstance(rt, PyPackage):
        reasons = _derive_python(rt, route)
    elif isinstance(rt, (Kokkos, Alpaka)):
        reasons = _derive_layered(rt, route, device.isa)
    else:
        reasons = _derive_offload(rt, route, device.isa)
    coverage = (sum(1 for r in reasons.values() if not r) / len(reasons))
    category = classify_route(route, coverage, thresholds)
    return RouteEvidence(route=route, probe_reasons=reasons,
                         category=category)


def derive_matrix(system: System | None = None,
                  thresholds: Thresholds = DEFAULT_THRESHOLDS,
                  ) -> dict[tuple[Vendor, Model, Language], DerivedCell]:
    """Statically derive all 51 cells from the route registry."""
    check_tables()
    if system is None:
        system = System.default()
    cells = {
        key: DerivedCell(vendor=key[0], model=key[1], language=key[2])
        for key in all_cells()
    }
    for route in all_routes():
        cells[(route.vendor, route.model, route.language)].evidence.append(
            derive_route(route, system, thresholds)
        )
    return cells


# ---------------------------------------------------------------------------
# Cross-check against the reconstructed Figure 1
# ---------------------------------------------------------------------------


def cross_check(system: System | None = None,
                thresholds: Thresholds = DEFAULT_THRESHOLDS) -> LintReport:
    """Compare the statically derived matrix to the paper matrix.

    Emits one ``RE01`` error per undocumented primary contradiction,
    ``RE02`` warnings when a paper-annotated dual rating is not derived
    (derived-only secondaries are not findings — Figure 1 annotates
    dual ratings only where §5 discusses them), and ``RE03`` info for
    divergences documented in ``KNOWN_DIVERGENCES``.
    """
    report = LintReport()
    derived = derive_matrix(system, thresholds)
    for key, cell in derived.items():
        vendor, model, language = key
        paper = PAPER_MATRIX[key]
        where = f"{vendor.value}/{model.value}/{language.value}"
        routes = ", ".join(e.route.route_id for e in cell.evidence) or "-"
        if cell.primary is not paper.primary:
            suppression = KNOWN_DIVERGENCES.get(key)
            if suppression is not None:
                report.add(make(
                    "RE03", where, routes,
                    f"documented divergence: derived "
                    f"{cell.primary.label!r} vs paper "
                    f"{paper.primary.label!r} — {suppression}",
                ))
            else:
                report.add(make(
                    "RE01", where, routes,
                    f"derived rating {cell.primary.label!r} contradicts "
                    f"the paper's {paper.primary.label!r} "
                    f"(description {paper.description_id})",
                    hint="fix the route registry / capability data, or "
                         "document the divergence in KNOWN_DIVERGENCES",
                ))
        elif (paper.secondary is not None
              and cell.secondary is not paper.secondary):
            got = cell.secondary.label if cell.secondary else "none"
            report.add(make(
                "RE02", where, routes,
                f"paper annotates a dual rating "
                f"{paper.secondary.label!r} but the derivation yields "
                f"{got!r}",
            ))
    return report
