"""tracesan — static translation validation of trace-compiled programs.

:mod:`repro.isa.tracing` compiles hot kernel batches into generated
Python programs that are ``exec``'d in-process.  Its correctness story
so far is *dynamic*: differential tests compare traced output against
the interpreter.  This module closes the silent-miscompile gap with a
per-program **static** validator in the translation-validation style of
the route-level TV passes: it takes a :class:`~repro.isa.tracing.
TracedProgram`'s generated source plus its :class:`~repro.isa.module.
KernelIR` and proves — without executing either — that the program
preserves interpreter semantics.

Three phases, reported as ``TC01``-``TC06`` diagnostics:

1. **Allowlist lint (TC02).**  The generated source is parsed to an AST
   and checked against a *closed* grammar: only the runtime helpers the
   trace namespace provides (``_resolve``/``_atomic``/``_barrier``/...),
   lane-array locals, a fixed set of ``np.*``/``B.*``/``X.*``/``stats.*``
   attributes, and structured statements.  No imports, no comprehensions,
   no attribute escapes.  This is the safety gate on code we ``exec``.

2. **Effect-summary equivalence (TC01/TC04).**  The kernel IR is
   abstract-interpreted over the :mod:`repro.analysis.symbolic` affine
   lattice (the same lattice kernelsan's bounds checks use), deriving a
   per-instruction effect summary: counter metering (``_ic``/``_fl``/
   ``_bld``/``_bst``/``_ao``/``_ba``), memory reads/writes with address
   affines, mask provenance, and barrier points.  The generated program
   is matched region by region against that summary — every instruction
   must meter ``_ic`` with the active context multiplicity, every load/
   store/atomic must touch the right space and element size under the
   right mask, every fast-path base address must agree with the
   independently derived affine.  A *provable* disagreement is ``TC01``
   (error).  When a summary is only a conservative bound (an affine the
   checker cannot derive, a gate shape it cannot classify) the verdict
   degrades to ``exact=False`` and reports ``TC04`` (warning) — the same
   degradation contract the bitonic cost model uses.

3. **Deferral re-proof (TC03).**  The trace compiler *sinks* pure
   single-site register chains into fast-path ``else`` arms.  The
   checker independently re-proves the three claims that make sinking
   sound — single static site, dominance of every splice over its uses,
   and operand stability across the replay horizon — directly on the
   generated AST, and flags any sunk chain it cannot re-prove.

Verdicts suppressed by :data:`repro.data.trace_divergences.
KNOWN_TRACE_DIVERGENCES` (which ships empty) surface as ``TC06`` info;
kernels that bailed out of trace compilation are ``TC05`` info and are
*never* validated.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field

from repro.analysis.symbolic import Affine
from repro.analysis.diagnostics import (Diagnostic, LintReport, Severity,
                                        make)
from repro.data.trace_divergences import divergence_reason
from repro.isa import dtypes
from repro.isa.dtypes import SCALAR_TYPES
from repro.isa.instructions import (AtomicOp, Barrier, BinOp, Cmp, Cvt, If,
                                    Imm, Load, MemSpace, Mov, Param,
                                    Register, Select, SharedAlloc,
                                    SpecialRead, Store, UnaryOp, While)

__all__ = [
    "TraceVerdict",
    "validate_program",
    "canonical_batch_width",
    "validate_library",
    "lint_traces",
    "traces_lint_report",
    "trace_agreement_summary",
]

_MAX_LOOP_TRIPS = 10_000_000


def _np_name(dt) -> str:
    name = dt.np_dtype.name
    return "bool_" if name == "bool" else name


def _dst_of(ins):
    dst = getattr(ins, "dst", None)
    return dst if isinstance(dst, Register) else None


def _unparse(node: ast.AST) -> str:
    return ast.unparse(node)


# ---------------------------------------------------------------------------
# Verdict
# ---------------------------------------------------------------------------


@dataclass
class TraceVerdict:
    """Outcome of statically validating one traced program.

    Attributes:
        key: The trace-cache key the program was compiled under.
        kernel: Kernel name.
        validated: True when no error-severity diagnostic fired.
        exact: True when every effect summary was proven *equal*; False
            when any summary was only a conservative bound (``TC04``).
        diagnostics: All findings, including suppressed ``TC06`` notes.
        elapsed_ms: Wall time the validation took.
    """

    key: tuple
    kernel: str
    validated: bool
    exact: bool
    diagnostics: list[Diagnostic] = field(default_factory=list)
    elapsed_ms: float = 0.0

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]


# ---------------------------------------------------------------------------
# Phase 1 — closed exec allowlist (TC02)
# ---------------------------------------------------------------------------

#: Names the exec namespace provides plus program-local scalars.
_FIXED_NAMES = frozenset({
    "X", "B", "args", "stats", "np", "DT",
    "_assign", "_resolve", "_atomic", "_barrier", "_span_ok",
    "_cdiv", "_crem",
    "IRError", "MemoryFaultError", "DivergentBarrierError",
    "bool", "int", "min", "max", "None", "True", "False",
    "_L", "_nB", "_fb", "_ic", "_fl", "_bld", "_bst", "_ao", "_ba",
    "_sh", "_svs",
})

#: Generated temp-local families (``_b3``, ``_k1``, ``_lv2``, ...).
_TEMP_PREFIXES = ("t", "sy", "b", "j", "c", "a", "a2", "ad", "vw", "ix",
                  "o", "sf", "k", "m", "n", "lv", "ln", "tr")

#: np.<attr> names a trace program may reference.
_NP_ATTRS = frozenset({
    "add", "subtract", "multiply", "divide", "mod", "minimum", "maximum",
    "power", "left_shift", "right_shift",
    "logical_and", "logical_or", "logical_xor", "logical_not",
    "bitwise_and", "bitwise_or", "bitwise_xor", "bitwise_not",
    "negative", "abs", "sqrt", "exp", "log", "sin", "cos", "tanh",
    "floor", "ceil", "rint",
    "equal", "not_equal", "less", "less_equal", "greater", "greater_equal",
    "where", "full", "empty", "ones", "zeros", "asarray",
    "ascontiguousarray", "copyto",
} | {_np_name(dt) for dt in SCALAR_TYPES.values()})

_B_ATTRS = frozenset({"lanes", "n_blocks", "first_block", "tid", "ctaid",
                      "block_linear"})
_X_ATTRS = frozenset({"_gview", "_shared_arena"})
_STATS_ATTRS = frozenset({"instructions", "flops", "bytes_loaded",
                          "bytes_stored", "atomic_ops", "barriers"})
#: Methods callable on arbitrary sub-expressions (ndarray surface).
_METHOD_ATTRS = frozenset({"copy", "astype", "reshape", "view", "flatten",
                           "sum"})

_ALLOWED_STMTS = (ast.Assign, ast.AugAssign, ast.If, ast.While, ast.Raise,
                  ast.Break, ast.Pass, ast.Expr)
_DTN_NAMES = frozenset(SCALAR_TYPES)


def _name_allowed(name: str) -> bool:
    if name in _FIXED_NAMES:
        return True
    if name.startswith("r") and name[1:].isdigit():
        return True
    if name.startswith("_"):
        body = name[1:]
        for prefix in _TEMP_PREFIXES:
            if body.startswith(prefix) and body[len(prefix):].isdigit():
                return True
        for view in ("gv_", "sv_", "s2_"):
            if body.startswith(view) and body[len(view):] in _DTN_NAMES:
                return True
    return False


def _check_allowlist(tree: ast.Module, kernel: str) -> list[Diagnostic]:
    """Phase 1: every node of the generated AST is on the closed list."""
    out: list[Diagnostic] = []

    def bad(node: ast.AST, what: str) -> None:
        out.append(make(
            "TC02", kernel, f"line {getattr(node, 'lineno', 0)}",
            f"generated program escapes the exec allowlist: {what}",
            hint="the trace compiler never emits this construct; treat the "
                 "program as hostile and refuse to exec it"))

    if (len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef)
            or tree.body[0].name != "_trace"):
        bad(tree, "module is not a single `def _trace(...)`")
        return out
    fn = tree.body[0]
    arg_names = [a.arg for a in fn.args.args]
    if (arg_names != ["X", "B", "args", "stats"] or fn.args.vararg
            or fn.args.kwarg or fn.args.kwonlyargs or fn.args.defaults
            or fn.decorator_list):
        bad(fn, "unexpected _trace signature")

    for node in ast.walk(fn):
        if isinstance(node, ast.stmt):
            if isinstance(node, ast.FunctionDef) and node is fn:
                continue
            if not isinstance(node, _ALLOWED_STMTS):
                bad(node, f"statement {type(node).__name__}")
            elif isinstance(node, ast.Raise):
                exc = node.exc
                if not (isinstance(exc, ast.Call)
                        and isinstance(exc.func, ast.Name)
                        and exc.func.id == "IRError"
                        and all(isinstance(a, ast.Constant)
                                and isinstance(a.value, str)
                                for a in exc.args)):
                    bad(node, "raise of anything but IRError(<str>)")
        elif isinstance(node, ast.Name):
            if not _name_allowed(node.id):
                bad(node, f"name `{node.id}`")
        elif isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "np":
                if node.attr not in _NP_ATTRS:
                    bad(node, f"np.{node.attr}")
            elif isinstance(base, ast.Name) and base.id == "B":
                if node.attr not in _B_ATTRS:
                    bad(node, f"B.{node.attr}")
            elif isinstance(base, ast.Name) and base.id == "X":
                if node.attr not in _X_ATTRS:
                    bad(node, f"X.{node.attr}")
            elif isinstance(base, ast.Name) and base.id == "stats":
                if node.attr not in _STATS_ATTRS:
                    bad(node, f"stats.{node.attr}")
            elif node.attr not in _METHOD_ATTRS:
                bad(node, f"attribute .{node.attr}")
        elif isinstance(node, (ast.Import, ast.ImportFrom, ast.Lambda,
                               ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp, ast.Await, ast.Yield,
                               ast.YieldFrom, ast.NamedExpr, ast.Starred,
                               ast.JoinedStr, ast.Global, ast.Nonlocal)):
            bad(node, type(node).__name__)
        elif isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float, bool, str,
                                           type(None))):
                bad(node, f"constant {node.value!r}")
        elif isinstance(node, ast.Call):
            fnode = node.func
            ok = (isinstance(fnode, (ast.Name, ast.Attribute)))
            if not ok or node.keywords and any(
                    kw.arg not in ("dtype", "where") for kw in node.keywords):
                bad(node, "call with unexpected shape")
    return out


# ---------------------------------------------------------------------------
# Phase 2 — IR-side effect derivation
# ---------------------------------------------------------------------------
#
# The checker re-derives, *independently of the trace compiler*, the
# classification every emission decision hangs off: which registers are
# thread-varying, which need merge slots, and what affine each address
# register denotes.  The uniformity fixpoint below is the compiler's
# published contract (tracing._TraceCompiler._analyze) restated; the
# affine domain is repro.analysis.symbolic with atoms
#   "fb"      — first block index of the batch,
#   "t"       — thread linear index within a block,
#   "row"     — block row within the batch,
#   "sym:<r>" — a uniform integer register's runtime value.


class _IRInfo:
    """Uniformity / merge / dtype classification of one kernel IR."""

    def __init__(self, kernel, warp_size, grid, block):
        self.k = kernel
        self.warp = warp_size
        self.grid = grid
        self.block = block
        self.bt = block[0] * block[1] * block[2]
        self.total_blocks = grid[0] * grid[1] * grid[2]
        self.dims = {
            "ntid.x": block[0], "ntid.y": block[1], "ntid.z": block[2],
            "nctaid.x": grid[0], "nctaid.y": grid[1], "nctaid.z": grid[2],
        }
        self.shared_bytes = max(kernel.shared_bytes, 8)
        self.counts: dict[str, int] = {}
        self.sites: dict[str, int] = {}
        self.regdt: dict[str, object] = {}
        self.varying: set[str] = set()
        self.merge: set[str] = set()
        self.global_dts: set[str] = set()
        self.shared_dts: set[str] = set()
        self._analyze()

    def _op_uniform(self, op) -> bool:
        if isinstance(op, Imm):
            return True
        return op.name not in self.varying

    def _value_uniform(self, ins) -> bool:
        if isinstance(ins, (Mov, UnaryOp, Cvt)):
            return self._op_uniform(ins.src)
        if isinstance(ins, (BinOp, Cmp)):
            return self._op_uniform(ins.a) and self._op_uniform(ins.b)
        if isinstance(ins, Select):
            return (self._op_uniform(ins.pred) and self._op_uniform(ins.a)
                    and self._op_uniform(ins.b))
        if isinstance(ins, SpecialRead):
            return ins.which in ("ntid.x", "ntid.y", "ntid.z", "nctaid.x",
                                 "nctaid.y", "nctaid.z", "warpsize")
        if isinstance(ins, SharedAlloc):
            return True
        return False

    def _analyze(self) -> None:
        counts = self.counts

        def cwalk(body, in_loop):
            for ins in body:
                d = _dst_of(ins)
                if d is not None:
                    counts[d.name] = counts.get(d.name, 0) + (
                        2 if in_loop else 1)
                    self.sites[d.name] = self.sites.get(d.name, 0) + 1
                    self.regdt[d.name] = d.dtype
                if isinstance(ins, If):
                    cwalk(ins.then_body, in_loop)
                    cwalk(ins.else_body, in_loop)
                elif isinstance(ins, While):
                    cwalk(ins.cond_body, True)
                    cwalk(ins.body, True)

        cwalk(self.k.body, False)
        for p in self.k.params:
            counts[p.name] = counts.get(p.name, 0) + 1
            self.regdt[p.name] = dtypes.U64 if p.is_pointer else p.dtype

        nonfull: set[str] = set()
        changed = True
        while changed:
            changed = False
            nonfull = set()

            def uwalk(body, static_full):
                nonlocal changed
                for ins in body:
                    if isinstance(ins, If):
                        cu = self._op_uniform(ins.cond)
                        uwalk(ins.then_body, static_full and cu)
                        uwalk(ins.else_body, static_full and cu)
                        continue
                    if isinstance(ins, While):
                        cu = self._op_uniform(ins.cond)
                        uwalk(ins.cond_body, static_full and cu)
                        uwalk(ins.body, static_full and cu)
                        continue
                    d = _dst_of(ins)
                    if d is None:
                        continue
                    if not static_full:
                        nonfull.add(d.name)
                    ok = self._value_uniform(ins) and (
                        static_full or counts.get(d.name, 0) <= 1)
                    if not ok and d.name not in self.varying:
                        self.varying.add(d.name)
                        changed = True

            uwalk(self.k.body, True)

        self.merge = {name for name in self.varying
                      if counts.get(name, 0) >= 2 and name in nonfull}

        def mwalk(body):
            for ins in body:
                if isinstance(ins, Load):
                    (self.global_dts if ins.space == MemSpace.GLOBAL
                     else self.shared_dts).add(ins.dst.dtype.name)
                elif isinstance(ins, (Store, AtomicOp)):
                    (self.global_dts if ins.space == MemSpace.GLOBAL
                     else self.shared_dts).add(ins.src.dtype.name)
                elif isinstance(ins, If):
                    mwalk(ins.then_body)
                    mwalk(ins.else_body)
                elif isinstance(ins, While):
                    mwalk(ins.cond_body)
                    mwalk(ins.body)

        mwalk(self.k.body)


@dataclass
class _APrefix:
    """A lane-prefix claim derived from a comparison: lanes [0, thr)."""

    kind: str       # "lin" (batch-linear) | "block" (per-block prefix)
    d0: int
    dfb: int
    cbl: int
    off: int
    u: tuple        # ("reg", name) | ("const", value)


@dataclass
class _AVal:
    """Abstract value of one IR register at one program point."""

    dtype: object = None
    uniform: bool = False
    const: int | None = None
    aff: Affine | None = None
    prefix: _APrefix | None = None
    src_reg: str | None = None   # provenance for sym minting


def _int_lo_hi(dt) -> tuple[int, int]:
    bits = dt.itemsize * 8
    if dt.np_dtype.kind == "u" or dt.is_pred:
        return 0, (1 << bits) - 1
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def _const_in_range(value: int, dt) -> int | None:
    if dt is None or not dt.is_integer:
        return None
    lo, hi = _int_lo_hi(dt)
    return value if lo <= value <= hi else None


def _aff_of(v: _AVal) -> Affine | None:
    """The affine a value denotes, minting a sym atom when it is a
    uniform integer register whose runtime value we cannot fold."""
    if v.aff is not None:
        return v.aff
    if v.const is not None:
        return Affine.of_const(v.const)
    if (v.uniform and v.dtype is not None and v.dtype.is_integer
            and v.src_reg is not None):
        return Affine.of_atom(f"sym:{v.src_reg}")
    return None


def _sym_atoms(aff: Affine) -> list[str]:
    return [a for a in aff.atoms if a.startswith("sym:")]


def _binop_aff(op: str, a: _AVal, b: _AVal, dst_dt) -> Affine | None:
    """Mirror of the compiler's affine propagation: integer add/sub, and
    mul by a pure constant; at most one sym atom in the result."""
    if dst_dt is None or not dst_dt.is_integer:
        return None
    aa, ba = _aff_of(a), _aff_of(b)
    if aa is None or ba is None:
        return None
    if op == "add":
        out = aa + ba
    elif op == "sub":
        out = aa - ba
    elif op == "mul":
        if aa.is_const and not _sym_atoms(aa):
            out = ba.scale(aa.const)
        elif ba.is_const and not _sym_atoms(ba):
            out = aa.scale(ba.const)
        else:
            return None
    else:
        return None
    if len(_sym_atoms(out)) > 1:
        return None
    return out


def _binop_const(op: str, a: _AVal, b: _AVal, dst_dt) -> int | None:
    if a.const is None or b.const is None:
        return None
    if op == "add":
        v = a.const + b.const
    elif op == "sub":
        v = a.const - b.const
    elif op == "mul":
        v = a.const * b.const
    else:
        return None
    return _const_in_range(v, dst_dt)


def _cmp_prefix(op: str, a: _AVal, b: _AVal, bt: int) -> _APrefix | None:
    """Mirror of the compiler's prefix derivation for fast gated Ifs."""
    if op not in ("lt", "le", "gt", "ge"):
        return None
    if (a.dtype is None or b.dtype is None
            or a.dtype.np_dtype != b.dtype.np_dtype
            or not a.dtype.is_integer):
        return None
    if not a.uniform and b.uniform:
        av, u, off = a, b, {"lt": 0, "le": 1}.get(op)
    elif not b.uniform and a.uniform:
        av, u, off = b, a, {"gt": 0, "ge": 1}.get(op)
    else:
        return None
    if off is None:
        return None
    aff = av.aff
    if aff is None or _sym_atoms(aff):
        return None
    cbl = aff.coeff("t")
    crow = aff.coeff("row")
    if cbl <= 0:
        return None
    if crow == cbl * bt:
        kind = "lin"
    elif crow == 0:
        kind = "block"
    else:
        return None
    if u.const is not None:
        uval = ("const", u.const)
    elif u.src_reg is not None:
        uval = ("reg", u.src_reg)
    else:
        return None
    return _APrefix(kind, aff.const, aff.coeff("fb"), cbl, off, uval)


# ---------------------------------------------------------------------------
# Phase 2 — generated-program matcher
# ---------------------------------------------------------------------------

#: Expected callee text per BinOp op (dtype-dependent entries handled in
#: code: div/rem pick the float or integer helper by result dtype,
#: and/or/xor pick logical vs bitwise by pred-ness).
_BINOP_CALLEES = {
    "add": "np.add", "sub": "np.subtract", "mul": "np.multiply",
    "min": "np.minimum", "max": "np.maximum", "pow": "np.power",
    "shl": "np.left_shift", "shr": "np.right_shift",
}
_UNARY_CALLEES = {
    "neg": "np.negative", "abs": "np.abs", "sqrt": "np.sqrt",
    "rsqrt": "np.sqrt", "exp": "np.exp", "log": "np.log", "sin": "np.sin",
    "cos": "np.cos", "tanh": "np.tanh", "floor": "np.floor",
    "ceil": "np.ceil", "round": "np.rint", "not": "np.logical_not",
    "bitnot": "np.bitwise_not",
}
_CMP_CALLEES = {
    "eq": "np.equal", "ne": "np.not_equal", "lt": "np.less",
    "le": "np.less_equal", "gt": "np.greater", "ge": "np.greater_equal",
}

_PURE_KINDS = (Mov, UnaryOp, BinOp, Cmp, Select, Cvt, SpecialRead)


class _Stop(Exception):
    """Abort matching after a fatal (error-severity) finding."""


def _norm(text: str) -> str:
    """Canonical rendering of an expression for text comparison."""
    try:
        return ast.unparse(ast.parse(text, mode="eval"))
    except SyntaxError:
        return text


def _is_counter_bump(stmt, name: str) -> bool:
    return (isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.op, ast.Add)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == name)


def _assign_target(stmt) -> str | None:
    if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)):
        return stmt.targets[0].id
    return None


def _is_temp(name: str | None, prefix: str) -> bool:
    return (name is not None and name.startswith("_" + prefix)
            and name[len(prefix) + 1:].isdigit())


def _find_calls(node: ast.AST, callee: str) -> list[ast.Call]:
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _unparse(sub.func) == callee:
            out.append(sub)
    return out


def _expected_value_callee(ins) -> str | None:
    """The intrinsic the payload of a value instruction must contain."""
    if isinstance(ins, BinOp):
        op = ins.op
        if op == "div":
            return "np.divide" if ins.dst.dtype.is_float else "_cdiv"
        if op == "rem":
            return "np.mod" if ins.dst.dtype.is_float else "_crem"
        if op in ("and", "or", "xor"):
            family = ("logical" if ins.dst.dtype.is_pred else "bitwise")
            return f"np.{family}_{op}"
        return _BINOP_CALLEES.get(op)
    if isinstance(ins, UnaryOp):
        return _UNARY_CALLEES.get(ins.op)
    if isinstance(ins, Cmp):
        return _CMP_CALLEES.get(ins.op)
    if isinstance(ins, Select):
        return "np.where"
    return None


def _linform(node: ast.AST, sy: dict[str, str]) -> dict | None:
    """Parse a generated base-address expression into a linear form over
    {"1", "fb", ("sym", text)} or None when it is not linear."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            return None
        return {"1": node.value}
    if isinstance(node, ast.Name):
        if node.id == "_fb":
            return {"fb": 1}
        if _is_temp(node.id, "sy"):
            return {("sym", sy.get(node.id, node.id)): 1}
        return {("sym", node.id): 1}
    if isinstance(node, ast.Call):
        fn = _unparse(node.func)
        if fn == "int" and len(node.args) == 1:
            inner = node.args[0]
            if isinstance(inner, ast.Name) and _is_temp(inner.id, "sy"):
                return {("sym", sy.get(inner.id, inner.id)): 1}
            return {("sym", _norm(_unparse(inner))): 1}
        if (fn.startswith("np.") and len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, int)):
            return {"1": node.args[0].value}
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _linform(node.operand, sy)
        if inner is None:
            return None
        return {k: -v for k, v in inner.items()}
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add,
                                                            ast.Sub)):
        a = _linform(node.left, sy)
        b = _linform(node.right, sy)
        if a is None or b is None:
            return None
        sign = 1 if isinstance(node.op, ast.Add) else -1
        out = dict(a)
        for k, v in b.items():
            out[k] = out.get(k, 0) + sign * v
        return {k: v for k, v in out.items() if v != 0}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        a = _linform(node.left, sy)
        b = _linform(node.right, sy)
        if a is None or b is None:
            return None
        for const_side, var_side in ((a, b), (b, a)):
            if set(const_side) <= {"1"}:
                c = const_side.get("1", 0)
                return {k: v * c for k, v in var_side.items() if v * c != 0}
        return None
    return None


@dataclass
class _MCtx:
    """Matching context: the active execution multiplicity and mask."""

    full: bool
    n_text: str            # normalized text the `_ic +=` bump must use
    arr: list              # one-slot cell: mask local text, None = unbound

    def bind_mask(self, text: str) -> bool:
        """Bind or check the context's mask text; False on conflict."""
        if self.full:
            return text == "None"
        if self.arr[0] is None:
            self.arr[0] = text
            return True
        return self.arr[0] == text


_VIEW_ROOTS = ("_gv_", "_sv_", "_s2_", "_vw")


def _view_store_targets(stmt) -> int:
    """Subscript stores whose root is a memory view (not a temp)."""
    count = 0
    for node in ast.walk(stmt):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for t in targets:
            root = t
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if (isinstance(t, ast.Subscript) and isinstance(root, ast.Name)
                    and root.id.startswith(_VIEW_ROOTS)):
                count += 1
    return count


class _Checker:
    """Match one generated trace program against its kernel IR."""

    def __init__(self, kernel, source: str, warp_size, grid, block):
        self.k = kernel
        self.source = source
        self.info = _IRInfo(kernel, warp_size, grid, block)
        self.env: dict[str, _AVal] = {}
        self.diags: list[Diagnostic] = []
        self.exact = True
        self.sy: dict[str, str] = {}
        self.param_local: dict[str, str] = {}
        self.local_map: dict[str, str] = {}   # local -> IR register name
        self.fast_gate_ifs: list[ast.If] = []
        self.shared_cursor = 0

    # -- reporting ---------------------------------------------------------

    def _tc01(self, path: str, msg: str, hint: str = "") -> None:
        self.diags.append(make("TC01", self.k.name, path, msg, hint))
        raise _Stop

    def _tc03(self, path: str, msg: str) -> None:
        self.diags.append(make("TC03", self.k.name, path, msg))

    def _tc04(self, path: str, msg: str) -> None:
        self.exact = False
        self.diags.append(make("TC04", self.k.name, path, msg))

    # -- abstract environment ----------------------------------------------

    def _read_op(self, op) -> _AVal:
        if isinstance(op, Imm):
            c = _const_in_range(int(op.value), op.dtype) \
                if op.dtype.is_integer else None
            return _AVal(op.dtype, True, c,
                         Affine.of_const(c) if c is not None else None)
        v = self.env.get(op.name)
        if v is None:
            v = _AVal(self.info.regdt.get(op.name),
                      op.name not in self.info.varying)
        return _AVal(v.dtype, v.uniform, v.const, v.aff, v.prefix,
                     src_reg=op.name)

    def _strip(self, names) -> None:
        for n in names:
            self.env[n] = _AVal(self.info.regdt.get(n),
                                n not in self.info.varying)

    def _assigned_in(self, body) -> set[str]:
        out: set[str] = set()
        for ins in body:
            d = _dst_of(ins)
            if d is not None:
                out.add(d.name)
            if isinstance(ins, If):
                out |= self._assigned_in(ins.then_body)
                out |= self._assigned_in(ins.else_body)
            elif isinstance(ins, While):
                out |= self._assigned_in(ins.cond_body)
                out |= self._assigned_in(ins.body)
        return out

    def _astep(self, ins) -> None:
        """Abstractly execute one value instruction (mirrors the
        compiler's const/affine/prefix propagation, including the
        fresh-cast degradation in ``_assign``)."""
        dst = _dst_of(ins)
        if dst is None:
            return
        name, dt = dst.name, dst.dtype
        out = _AVal(dt, name not in self.info.varying)
        vdt = None          # the dtype the value expression produces
        if isinstance(ins, Mov):
            s = self._read_op(ins.src)
            vdt = s.dtype
            out.const, out.aff, out.prefix = s.const, s.aff, s.prefix
        elif isinstance(ins, BinOp):
            a, b = self._read_op(ins.a), self._read_op(ins.b)
            if (a.dtype is not None and b.dtype is not None
                    and a.dtype.np_dtype == b.dtype.np_dtype):
                vdt = a.dtype
            if ins.op == "div" and (vdt is None or not vdt.is_float):
                vdt = None if not dt.is_float else vdt
            out.const = _binop_const(ins.op, a, b, dt)
            out.aff = _binop_aff(ins.op, a, b, dt)
        elif isinstance(ins, Cmp):
            a, b = self._read_op(ins.a), self._read_op(ins.b)
            vdt = dtypes.PRED
            out.prefix = _cmp_prefix(ins.op, a, b, self.info.bt)
        elif isinstance(ins, Cvt):
            s = self._read_op(ins.src)
            vdt = dt
            if (dt.is_integer and s.dtype is not None
                    and s.dtype.is_integer):
                out.aff = s.aff
                if s.const is not None:
                    out.const = _const_in_range(s.const, dt)
        elif isinstance(ins, SpecialRead):
            w = ins.which
            vdt = dt
            if w in self.info.dims:
                out.const = self.info.dims[w]
                out.aff = Affine.of_const(out.const)
            elif w == "warpsize":
                out.const = self.info.warp
                out.aff = Affine.of_const(out.const)
            elif (w == "tid.x" and self.info.block[1] == 1
                    and self.info.block[2] == 1):
                out.aff = Affine.of_atom("t")
            elif (w == "ctaid.x" and self.info.grid[1] == 1
                    and self.info.grid[2] == 1
                    and self.info.total_blocks - 1 <= 0xFFFFFFFF):
                out.aff = Affine.make(0, {"fb": 1, "row": 1})
        elif isinstance(ins, SharedAlloc):
            align = ins.dtype.itemsize
            self.shared_cursor = -(-self.shared_cursor // align) * align
            out.const = self.shared_cursor
            out.aff = Affine.of_const(out.const)
            self.shared_cursor += align * ins.count
            vdt = dt
        # mirror _assign's fresh-cast degradation
        fresh = vdt is None or vdt.np_dtype != dt.np_dtype
        if fresh:
            out.aff = out.prefix = None
            if vdt is not None:
                out.const = None
            elif out.const is not None:
                out.const = _const_in_range(out.const, dt)
        self.env[name] = out

    # -- prelude / epilogue ------------------------------------------------

    _PRELUDE_HEAD = ("_L = B.lanes", "_nB = B.n_blocks",
                     "_fb = int(B.first_block)", "_ic = 0", "_fl = 0",
                     "_bld = 0", "_bst = 0", "_ao = 0", "_ba = 0")

    def _match_prelude(self, stmts) -> int:
        for i, want in enumerate(self._PRELUDE_HEAD):
            if i >= len(stmts) or _unparse(stmts[i]) != want:
                self._tc01("prelude", f"expected `{want}` at prelude "
                           f"statement {i}")
        i = len(self._PRELUDE_HEAD)
        gv_seen: set[str] = set()
        sv_seen: set[str] = set()
        param_idx = 0
        merge_nones = 0
        while i < len(stmts) and not _is_counter_bump(stmts[i], "_ic") \
                and not isinstance(stmts[i], ast.Pass):
            s = stmts[i]
            tgt = _assign_target(s)
            i += 1
            if tgt is None:
                self._tc01("prelude", "non-assignment before first "
                           "instruction")
            elif tgt.startswith("_gv_"):
                gv_seen.add(tgt[4:])
            elif tgt.startswith("_sv_"):
                sv_seen.add(tgt[4:])
            elif tgt in ("_sh", "_svs") or tgt.startswith("_s2_"):
                pass
            elif tgt.startswith("r") and tgt[1:].isdigit():
                if (isinstance(s.value, ast.Constant)
                        and s.value.value is None):
                    merge_nones += 1
                else:
                    self._match_param_bind(tgt, s, param_idx)
                    param_idx += 1
            else:
                self._tc01("prelude", f"unexpected binding `{tgt}`")
        if gv_seen != self.info.global_dts:
            self._tc01("prelude", "global views bound for "
                       f"{sorted(gv_seen)}, IR touches "
                       f"{sorted(self.info.global_dts)}")
        if sv_seen != self.info.shared_dts:
            self._tc01("prelude", "shared views bound for "
                       f"{sorted(sv_seen)}, IR touches "
                       f"{sorted(self.info.shared_dts)}")
        if param_idx != len(self.k.params):
            self._tc01("prelude", f"{param_idx} parameter bindings for "
                       f"{len(self.k.params)} kernel parameters")
        pnames = {p.name for p in self.k.params}
        want_nones = len([m for m in self.info.merge if m not in pnames])
        if merge_nones != want_nones:
            self._tc01("prelude", f"{merge_nones} merge slots initialised, "
                       f"analysis requires {want_nones}")
        return i

    def _match_param_bind(self, local, stmt, idx) -> None:
        if idx >= len(self.k.params):
            self._tc01("prelude", "more parameter bindings than parameters")
        p = self.k.params[idx]
        self.param_local[local] = p.name
        npn = _np_name(self.info.regdt[p.name])
        if p.name in self.info.varying:
            want = f"np.full(_L, args[{idx}], dtype=np.{npn})"
        else:
            want = f"np.full((), args[{idx}], dtype=np.{npn})[()]"
        if _unparse(stmt.value) != want:
            self._tc01("prelude", f"parameter `{p.name}` bound as "
                       f"`{_unparse(stmt.value)}`, expected `{want}`")

    _EPILOGUE = (("instructions", "_ic"), ("flops", "_fl"),
                 ("bytes_loaded", "_bld"), ("bytes_stored", "_bst"),
                 ("atomic_ops", "_ao"), ("barriers", "_ba"))

    def _match_epilogue(self, stmts) -> None:
        for s, (attr, ctr) in zip(stmts, self._EPILOGUE):
            want = f"stats.{attr} += {ctr}"
            if _unparse(s) != want:
                self._tc01("epilogue", f"expected `{want}`, found "
                           f"`{_unparse(s)}`")

    # -- region matching ---------------------------------------------------

    def _match_body(self, ir_body, stmts, ctx: _MCtx, path: str) -> None:
        if not ir_body:
            real = [s for s in stmts if not isinstance(s, ast.Pass)]
            if real:
                self._tc01(path, "code emitted for an empty IR body")
            return
        chunks: list[list] = []
        cur: list | None = None
        for s in stmts:
            if _is_counter_bump(s, "_ic"):
                cur = [s]
                chunks.append(cur)
            elif cur is None:
                self._tc01(path, "statement before the region's first "
                           "instruction metering bump")
            else:
                cur.append(s)
        if len(chunks) != len(ir_body):
            self._tc01(path, f"{len(chunks)} emitted instructions for "
                       f"{len(ir_body)} IR instructions")
        for k, (ins, chunk) in enumerate(zip(ir_body, chunks)):
            self._match_ins(ins, chunk, ctx,
                            f"{path}[{k}] {type(ins).__name__}")

    def _match_ins(self, ins, chunk, ctx: _MCtx, path: str) -> None:
        got_n = _norm(_unparse(chunk[0].value))
        if got_n != ctx.n_text:
            self._tc01(path, f"instruction metering `_ic += {got_n}` does "
                       f"not match context multiplicity `{ctx.n_text}`")
        payload = []
        fl_seen = False
        for s in chunk[1:]:
            tgt = _assign_target(s)
            if _is_temp(tgt, "sy"):
                val = s.value
                if (isinstance(val, ast.Call)
                        and _unparse(val.func) == "int"
                        and len(val.args) == 1):
                    self.sy[tgt] = _norm(_unparse(val.args[0]))
                continue
            if _is_counter_bump(s, "_fl"):
                fl_seen = True
                if _norm(_unparse(s.value)) != ctx.n_text:
                    self._tc01(path, "flop metering does not match context "
                               "multiplicity")
                continue
            payload.append(s)
        expect_fl = (isinstance(ins, (BinOp, UnaryOp))
                     and ins.dst.dtype.is_float)
        if fl_seen != expect_fl:
            self._tc01(path, "flop metering "
                       + ("missing for" if expect_fl else "charged for")
                       + " this instruction")
        if isinstance(ins, Barrier):
            self._match_barrier(payload, ctx, path)
        elif isinstance(ins, (Load, Store)):
            self._match_mem(ins, payload, ctx, path)
        elif isinstance(ins, AtomicOp):
            self._match_atomic(ins, payload, ctx, path)
        elif isinstance(ins, If):
            self._match_if(ins, payload, ctx, path)
        elif isinstance(ins, While):
            self._match_while(ins, payload, ctx, path)
        else:
            self._match_value(ins, payload, ctx, path)

    # -- leaf matchers -----------------------------------------------------

    def _match_value(self, ins, payload, ctx: _MCtx, path: str) -> None:
        callee = _expected_value_callee(ins)
        dst = _dst_of(ins)
        if not payload:
            name = dst.name if dst else "?"
            if (dst is None or not isinstance(ins, _PURE_KINDS)
                    or name not in self.info.varying):
                self._tc01(path, "instruction has no emission at its site "
                           "and is not a legal deferral candidate")
            elif self.info.sites.get(name, 0) != 1:
                self._tc03(path, f"sunk register `{name}` fails the "
                           "single-static-site claim: assigned at "
                           f"{self.info.sites.get(name, 0)} sites")
        else:
            if callee is not None and not any(
                    _find_calls(s, callee) for s in payload):
                self._tc01(path, f"payload never applies `{callee}`; the "
                           "generated value cannot match the IR operation")
            for s in payload:
                for call in _find_calls(s, "np.copyto"):
                    for kw in call.keywords:
                        if kw.arg == "where" and not ctx.bind_mask(
                                _norm(_unparse(kw.value))):
                            self._tc01(path, "merge writes under a mask "
                                       "that is not the active context "
                                       "mask")
                if _view_store_targets(s):
                    self._tc01(path, "value instruction writes to a "
                               "memory view")
            if dst is not None:
                # The payload's register-local assignment target *is* the
                # destination register's local: learn the local <-> IR
                # register binding so later symbol-identity proofs (base
                # addresses, prefix-gate bounds) resolve non-parameter
                # registers too.  Value payloads never contain deferral
                # splices, so every r-local target here belongs to `dst`.
                for s in payload:
                    for node in ast.walk(s):
                        if isinstance(node, ast.Assign):
                            t = _assign_target(node)
                            if t and t.startswith("r") and t[1:].isdigit():
                                self.local_map[t] = dst.name
        self._astep(ins)

    def _match_barrier(self, payload, ctx: _MCtx, path: str) -> None:
        if len(payload) != 1 or not _is_counter_bump(payload[0], "_ba"):
            self._tc01(path, "barrier must meter `_ba` and nothing else")
        rhs = payload[0].value
        if ctx.full:
            if _norm(_unparse(rhs)) != "_nB":
                self._tc01(path, "full-context barrier must charge one "
                           "barrier per block")
        else:
            calls = _find_calls(rhs, "_barrier")
            if len(calls) != 1 or len(calls[0].args) != 3:
                self._tc01(path, "masked barrier must go through the "
                           "_barrier runtime check")
            if not ctx.bind_mask(_norm(_unparse(calls[0].args[2]))):
                self._tc01(path, "barrier mask is not the active context "
                           "mask")

    def _match_mem(self, ins, payload, ctx: _MCtx, path: str) -> None:
        is_load = isinstance(ins, Load)
        ctr = "_bld" if is_load else "_bst"
        dt = ins.dst.dtype if is_load else ins.src.dtype
        isz = dt.itemsize
        is_global = ins.space == MemSpace.GLOBAL
        bumps = [s for s in payload if _is_counter_bump(s, ctr)]
        if len(bumps) != 1:
            self._tc01(path, f"expected exactly one `{ctr}` byte-metering "
                       f"bump, found {len(bumps)}")
        rhs = bumps[0].value
        if not (isinstance(rhs, ast.BinOp) and isinstance(rhs.op, ast.Mult)
                and isinstance(rhs.right, ast.Constant)
                and rhs.right.value == isz):
            self._tc01(path, f"byte metering does not multiply by the "
                       f"element size {isz}")
        if _norm(_unparse(rhs.left)) != ctx.n_text:
            self._tc01(path, "byte metering does not match context "
                       "multiplicity")
        body = [s for s in payload if s is not bumps[0]]
        stores = sum(_view_store_targets(s) for s in body)
        want_stores = 0
        fast_assign = next((s for s in body
                            if _is_temp(_assign_target(s), "b")), None)
        if fast_assign is not None:
            gate = next((s for s in body if isinstance(s, ast.If)), None)
            if gate is None:
                self._tc01(path, "fast-path base bound without a guarded "
                           "branch")
            self.fast_gate_ifs.append(gate)
            test_text = _unparse(gate.test)
            need = [f"% {isz} == 0"]
            if is_global:
                need.append("_span_ok(")
            else:
                need.append("0 <= _b")
                need.append(f"<= {self.info.shared_bytes}")
            for frag in need:
                if frag not in test_text:
                    self._tc01(path, f"fast-path guard lacks `{frag}`; the "
                               "unchecked access could fault or alias")
            self._check_base(ins, fast_assign.value, isz, ctx, path)
            self._check_resolve(ins, gate.orelse, ctx, path,
                                store=not is_load)
            want_stores = 0 if is_load else 2
        else:
            self._check_resolve(ins, body, ctx, path, store=not is_load)
            want_stores = 0 if is_load else 1
        if stores != want_stores:
            self._tc01(path, f"{stores} memory-view stores emitted, "
                       f"semantics require {want_stores}")
        d = _dst_of(ins)
        if d is not None:
            self.env[d.name] = _AVal(d.dtype,
                                     d.name not in self.info.varying)

    def _check_resolve(self, ins, region, ctx: _MCtx, path: str,
                       store: bool) -> None:
        calls = [c for s in region for c in _find_calls(s, "_resolve")]
        if len(calls) != 1 or len(calls[0].args) != 8:
            self._tc01(path, "memory access lacks the single checked "
                       "_resolve generic path")
        call = calls[0]
        dt = ins.dst.dtype if isinstance(ins, Load) else ins.src.dtype
        want_dt = f"DT['{dt.name}']"
        if _unparse(call.args[5]) != want_dt:
            self._tc01(path, f"access resolves dtype "
                       f"`{_unparse(call.args[5])}`, IR requires "
                       f"`{want_dt}`")
        is_global = ins.space == MemSpace.GLOBAL
        a6 = call.args[6]
        if not (isinstance(a6, ast.Constant) and a6.value is is_global):
            self._tc01(path, "access resolves the wrong address space")
        a7 = call.args[7]
        if not (isinstance(a7, ast.Constant) and a7.value is store):
            self._tc01(path, "load/store polarity flag does not match the "
                       "IR operation")
        eff = call.args[4]
        eff_text = ("None" if isinstance(eff, ast.Constant)
                    and eff.value is None else _norm(_unparse(eff)))
        if ctx.full and eff_text != "None":
            self._tc01(path, "full-context access carries a spurious mask")
        if not ctx.full and not ctx.bind_mask(eff_text):
            self._tc01(path, "access mask is not the active context mask")

    def _check_base(self, ins, bexpr, isz, ctx: _MCtx, path: str) -> None:
        addr = self._read_op(ins.addr)
        my = addr.aff
        if my is None:
            self._tc04(path, "cannot derive an address affine for the "
                       "fast-path base; accepting the compiler's "
                       "contiguity claim as a conservative bound")
            return
        is_global = ins.space == MemSpace.GLOBAL
        if my.coeff("t") != isz:
            self._tc01(path, f"fast path claims lane-contiguity but the "
                       f"address lane stride is {my.coeff('t')}, not "
                       f"{isz}")
        want_row = isz * self.info.bt if is_global else 0
        if my.coeff("row") != want_row:
            self._tc01(path, f"fast path claims block stride {want_row} "
                       f"but the address block stride is "
                       f"{my.coeff('row')}")
        lf = _linform(bexpr, self.sy)
        if lf is None:
            self._tc04(path, "fast-path base expression is not linear; "
                       "degrading to a conservative bound")
            return
        syms_gen = {k: v for k, v in lf.items() if isinstance(k, tuple)}
        syms_mine = {a: my.coeff(a) for a in _sym_atoms(my)}
        if len(syms_gen) != len(syms_mine) or len(syms_gen) > 1:
            self._tc04(path, "symbolic structure of the base address "
                       "differs from the derived affine; degrading to a "
                       "conservative bound")
            return
        if lf.get("1", 0) != my.const:
            self._tc01(path, f"fast-path base constant {lf.get('1', 0)} "
                       f"differs from the derived affine offset "
                       f"{my.const}")
        if lf.get("fb", 0) != my.coeff("fb"):
            self._tc01(path, f"fast-path first-block coefficient "
                       f"{lf.get('fb', 0)} differs from the derived "
                       f"{my.coeff('fb')}")
        if syms_gen:
            (_, gtext), gc = next(iter(syms_gen.items()))
            atom, mc = next(iter(syms_mine.items()))
            if gc != mc:
                self._tc01(path, f"symbolic coefficient {gc} differs from "
                           f"the derived {mc}")
            mine_reg = atom[4:]
            mapped = self.param_local.get(gtext,
                                          self.local_map.get(gtext))
            if mapped is not None:
                if mapped != mine_reg:
                    self._tc01(path, f"base address scales register "
                               f"`{mapped}`, IR semantics scale "
                               f"`{mine_reg}`")
            else:
                self._tc04(path, "cannot bind the base address symbol to "
                           "an IR register; coefficient-only proof")

    def _match_atomic(self, ins, payload, ctx: _MCtx, path: str) -> None:
        bumps = [s for s in payload if _is_counter_bump(s, "_ao")]
        if len(bumps) != 1 \
                or _norm(_unparse(bumps[0].value)) != ctx.n_text:
            self._tc01(path, "atomic metering does not match context "
                       "multiplicity")
        self._check_resolve(ins, payload, ctx, path, store=True)
        calls = [c for s in payload for c in _find_calls(s, "_atomic")]
        if len(calls) != 1 or len(calls[0].args) != 8:
            self._tc01(path, "atomic must go through exactly one _atomic "
                       "runtime call")
        call = calls[0]
        oparg = call.args[4]
        if not (isinstance(oparg, ast.Constant) and oparg.value == ins.op):
            self._tc01(path, f"atomic applies `{getattr(oparg, 'value', '?')}`, "
                       f"IR requires `{ins.op}`")
        want = ins.dst is not None
        wantarg = call.args[5]
        if not (isinstance(wantarg, ast.Constant)
                and wantarg.value is want):
            self._tc01(path, "atomic old-value capture flag does not match "
                       "the IR")
        npn = _np_name(ins.src.dtype)
        if _unparse(call.args[7]) != f"np.{npn}":
            self._tc01(path, "atomic operates at the wrong element dtype")
        if sum(_view_store_targets(s) for s in payload):
            self._tc01(path, "atomic chunk writes to a memory view outside "
                       "the _atomic runtime call")
        d = _dst_of(ins)
        if d is not None:
            self.env[d.name] = _AVal(d.dtype,
                                     d.name not in self.info.varying)

    # -- control flow ------------------------------------------------------

    def _cond_uniform(self, cond) -> bool:
        return isinstance(cond, Imm) or cond.name not in self.info.varying

    def _match_if(self, ins, payload, ctx: _MCtx, path: str) -> None:
        snap = dict(self.env)
        assigned = (self._assigned_in(ins.then_body)
                    | self._assigned_in(ins.else_body))
        if self._cond_uniform(ins.cond):
            if len(payload) != 1 or not isinstance(payload[0], ast.If):
                self._tc01(path, "uniform conditional must lower to a "
                           "single branch")
            node = payload[0]
            t = node.test
            if not (isinstance(t, ast.Call)
                    and _unparse(t.func) == "bool"):
                self._tc01(path, "uniform conditional must branch on a "
                           "scalar bool; lane-gating a uniform condition "
                           "changes semantics")
            self._match_body(ins.then_body, node.body, ctx,
                             path + ".then")
            self.env = dict(snap)
            if ins.else_body:
                self._match_body(ins.else_body, node.orelse, ctx,
                                 path + ".else")
            elif node.orelse:
                self._tc01(path, "else arm emitted for an IR conditional "
                           "without one")
        else:
            self._match_varying_if(ins, payload, ctx, path)
        self.env = dict(snap)
        self._strip(assigned)

    def _match_varying_if(self, ins, payload, ctx: _MCtx,
                          path: str) -> None:
        snap = dict(self.env)
        j = next((k for k, s in enumerate(payload)
                  if isinstance(s, ast.If)), None)
        if j is None:
            self._tc01(path, "varying conditional lowered without a "
                       "lane gate")
        pre, gate, after = payload[:j], payload[j], payload[j + 1:]
        t = gate.test
        if not (isinstance(t, ast.Compare) and len(t.ops) == 1
                and isinstance(t.ops[0], ast.Gt)
                and isinstance(t.comparators[0], ast.Constant)
                and t.comparators[0].value == 0
                and isinstance(t.left, ast.Name)):
            self._tc01(path, "varying conditional gate is not a "
                       "positive-population check")
        gname = t.left.id
        if _is_temp(gname, "k"):
            child, then_n = self._match_prefix_gate(ins, pre, gname, ctx,
                                                    path)
        elif _is_temp(gname, "n"):
            child, then_n = self._match_general_gate(ins, pre, gname, ctx,
                                                     path)
        else:
            self._tc01(path, f"unrecognised gate population `{gname}`")
        self._match_body(ins.then_body, gate.body, child, path + ".then")
        self.env = dict(snap)
        if ins.else_body:
            ej = next((k for k, s in enumerate(after)
                       if isinstance(s, ast.If)), None)
            if ej is None:
                self._tc01(path, "IR else arm has no emitted gate")
            epre, egate, tail = after[:ej], after[ej], after[ej + 1:]
            if tail:
                self._tc01(path, "statements after the else gate")
            et = egate.test
            if not (isinstance(et, ast.Compare) and len(et.ops) == 1
                    and isinstance(et.ops[0], ast.Gt)
                    and isinstance(et.comparators[0], ast.Constant)
                    and et.comparators[0].value == 0):
                self._tc01(path, "else gate is not a positive-population "
                           "check")
            en = _norm(_unparse(et.left))
            base_n = "_L" if ctx.full else ctx.n_text
            want_en = _norm(f"({base_n}) - ({then_n})")
            if en != want_en:
                self._tc01(path, f"else population `{en}` is not the "
                           f"complement `{want_en}` of the then arm")
            emask = next((_assign_target(s) for s in epre
                          if _is_temp(_assign_target(s), "m")), None)
            if emask is None:
                self._tc01(path, "else arm executes without a complement "
                           "mask")
            ectx = _MCtx(False, en, [emask])
            self._match_body(ins.else_body, egate.body, ectx,
                             path + ".else")
        elif after:
            self._tc01(path, "else arm emitted for an IR conditional "
                       "without one")

    def _match_prefix_gate(self, ins, pre, gname, ctx: _MCtx, path: str):
        kassign = next((s for s in pre if _assign_target(s) == gname),
                       None)
        if kassign is None:
            self._tc01(path, f"gate population `{gname}` never bound")
        val = kassign.value
        ok = (isinstance(val, ast.Call) and _unparse(val.func) == "min"
              and len(val.args) == 2
              and isinstance(val.args[0], ast.Call)
              and _unparse(val.args[0].func) == "max")
        if not ok:
            self._tc01(path, "prefix gate population is not "
                       "min(max(thr, 0), limit)-clamped")
        thr = val.args[0].args[0]
        lim = val.args[1]
        if isinstance(lim, ast.Name) and lim.id == "_L":
            kind, n_text = "lin", gname
        elif (isinstance(lim, ast.Constant)
                and lim.value == self.info.bt):
            kind, n_text = "block", _norm(f"{gname} * _nB")
        else:
            self._tc01(path, "prefix gate clamps to neither the lane "
                       "count nor the block size")
        cv = self._read_op(ins.cond)
        pf = cv.prefix
        if pf is None:
            self._tc04(path, "cannot derive a lane-prefix for the "
                       "condition; accepting the compiler's gate as a "
                       "conservative bound")
        else:
            if pf.kind != kind:
                self._tc01(path, f"gate batches lanes `{kind}`-wise but "
                           f"the condition's prefix is `{pf.kind}`")
            self._check_thr(thr, pf, path)
        return _MCtx(False, n_text, [None]), n_text

    def _check_thr(self, thr, pf: _APrefix, path: str) -> None:
        node = thr
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        else:
            self._tc04(path, "unrecognised prefix threshold shape")
            return
        if not (isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.FloorDiv)
                and isinstance(node.right, ast.Constant)):
            self._tc04(path, "unrecognised prefix threshold shape")
            return
        if node.right.value != pf.cbl:
            self._tc01(path, f"prefix threshold divides by "
                       f"{node.right.value}, the condition's lane stride "
                       f"is {pf.cbl}")
        diff = node.left
        if not (isinstance(diff, ast.BinOp)
                and isinstance(diff.op, ast.Sub)):
            self._tc04(path, "unrecognised prefix threshold shape")
            return
        b1 = _linform(diff.left, self.sy)
        b2 = _linform(diff.right, self.sy)
        if b1 is None or b2 is None:
            self._tc04(path, "prefix threshold is not linear")
            return
        if b1.get("1", 0) != pf.d0 or b1.get("fb", 0) != pf.dfb:
            self._tc01(path, f"prefix threshold base "
                       f"({b1.get('1', 0)}, {b1.get('fb', 0)}*fb) differs "
                       f"from the condition affine ({pf.d0}, "
                       f"{pf.dfb}*fb)")
        off = b2.get("1", 0)
        syms = {k: v for k, v in b2.items() if isinstance(k, tuple)}
        if pf.u[0] == "const":
            if syms or off != pf.u[1] + pf.off:
                self._tc01(path, "prefix threshold bound does not match "
                           "the uniform comparison operand")
        else:
            if off != pf.off or len(syms) != 1:
                self._tc01(path, "prefix threshold offset does not match "
                           "the comparison's inclusivity")
            (_, gtext), gc = next(iter(syms.items()))
            mapped = self.param_local.get(gtext,
                                          self.local_map.get(gtext))
            if gc != 1:
                self._tc01(path, "prefix threshold scales the uniform "
                           "bound")
            if mapped is not None:
                if mapped != pf.u[1]:
                    self._tc01(path, f"prefix gate bounds lanes by "
                               f"register `{mapped}`, the IR compares "
                               f"against `{pf.u[1]}`")
            else:
                self._tc04(path, "cannot bind the prefix bound symbol to "
                           "an IR register")

    def _match_general_gate(self, ins, pre, gname, ctx: _MCtx,
                            path: str):
        nassign = next((s for s in pre if _assign_target(s) == gname),
                       None)
        if nassign is None:
            self._tc01(path, f"gate population `{gname}` never bound")
        val = nassign.value
        if not (isinstance(val, ast.Call) and _unparse(val.func) == "int"
                and len(val.args) == 1
                and isinstance(val.args[0], ast.Call)
                and isinstance(val.args[0].func, ast.Attribute)
                and val.args[0].func.attr == "sum"):
            self._tc01(path, "gate population is not a mask popcount")
        mask_text = _norm(_unparse(val.args[0].func.value))
        if ctx.full:
            if _is_temp(mask_text, "m"):
                self._tc01(path, "full-context gate intersects a parent "
                           "mask that does not exist")
        else:
            massign = next((s for s in pre
                            if _assign_target(s) == mask_text), None)
            if massign is None:
                self._tc01(path, "nested gate does not intersect the "
                           "parent mask")
            mval = massign.value
            if not (isinstance(mval, ast.BinOp)
                    and isinstance(mval.op, ast.BitAnd)):
                self._tc01(path, "nested gate mask is not a parent-mask "
                           "intersection")
            if not ctx.bind_mask(_norm(_unparse(mval.left))):
                self._tc01(path, "nested gate intersects a mask that is "
                           "not the active context mask")
        return _MCtx(False, gname, [mask_text]), gname

    def _match_while(self, ins, payload, ctx: _MCtx, path: str) -> None:
        assigned = (self._assigned_in(ins.cond_body)
                    | self._assigned_in(ins.body))
        self._strip(assigned)
        wnodes = [s for s in payload if isinstance(s, ast.While)]
        if len(wnodes) != 1:
            self._tc01(path, "loop must lower to exactly one while")
        wnode = wnodes[0]
        if not (isinstance(wnode.test, ast.Constant)
                and wnode.test.value is True):
            self._tc01(path, "loop is not the while-True protocol")
        inner = list(wnode.body)
        guard = next((s for s in inner if isinstance(s, ast.If)
                      and isinstance(s.test, ast.Compare)
                      and isinstance(s.test.left, ast.Name)
                      and _is_temp(s.test.left.id, "tr")), None)
        if guard is None or not any(isinstance(x, ast.Raise)
                                    for x in guard.body):
            self._tc01(path, "runaway-loop guard missing; an IR loop "
                       "must bound its trip count")
        if not (isinstance(guard.test.comparators[0], ast.Constant)
                and guard.test.comparators[0].value == _MAX_LOOP_TRIPS):
            self._tc01(path, f"runaway-loop guard bound differs from "
                       f"{_MAX_LOOP_TRIPS}")
        inner = [s for s in inner if s is not guard
                 and not (isinstance(s, ast.AugAssign)
                          and isinstance(s.target, ast.Name)
                          and _is_temp(s.target.id, "tr"))]
        if self._cond_uniform(ins.cond):
            bi = next((k for k, s in enumerate(inner)
                       if isinstance(s, ast.If)
                       and isinstance(s.test, ast.UnaryOp)
                       and isinstance(s.test.op, ast.Not)
                       and any(isinstance(x, ast.Break)
                               for x in s.body)), None)
            if bi is None:
                self._tc01(path, "uniform loop has no scalar break on "
                           "its condition")
            self._match_body(ins.cond_body, inner[:bi], ctx,
                             path + ".cond")
            self._match_body(ins.body, inner[bi + 1:], ctx, path + ".body")
        else:
            lv = next((_assign_target(s) for s in payload
                       if _is_temp(_assign_target(s), "lv")), None)
            ln = next((_assign_target(s) for s in payload
                       if _is_temp(_assign_target(s), "ln")), None)
            if lv is None or ln is None:
                self._tc01(path, "varying loop lacks the live-mask "
                           "protocol")
            child = _MCtx(False, ln, [lv])
            breaks = [k for k, s in enumerate(inner)
                      if isinstance(s, ast.If)
                      and any(isinstance(x, ast.Break) for x in s.body)]
            narrow = next((k for k, s in enumerate(inner)
                           if isinstance(s, ast.AugAssign)
                           and isinstance(s.op, ast.BitAnd)
                           and isinstance(s.target, ast.Name)
                           and s.target.id == lv), None)
            if len(breaks) < 2 or narrow is None:
                self._tc01(path, "varying loop does not re-narrow and "
                           "re-check its live mask")
            cond_stmts = inner[breaks[0] + 1:narrow]
            body_start = breaks[1] + 1
            recount = inner[narrow + 1:breaks[1]]
            if not any(_assign_target(s) == ln for s in recount):
                self._tc01(path, "varying loop never recounts its live "
                           "mask")
            self._match_body(ins.cond_body, cond_stmts, child,
                             path + ".cond")
            self._match_body(ins.body, inner[body_start:], child,
                             path + ".body")
        self._strip(assigned)

    # -- Phase 3: deferral re-proof (TC03) ---------------------------------

    def _check_deferrals(self, fn: ast.FunctionDef) -> None:
        scopes = [g.orelse for g in self.fast_gate_ifs]
        scope_stmts = {id(s) for block in scopes for s in block}

        defs: dict[str, list[tuple[int, bool, ast.AST]]] = {}

        def collect(stmts, in_scope):
            for s in stmts:
                here = in_scope or id(s) in scope_stmts
                tgt = _assign_target(s)
                if (tgt and tgt.startswith("r") and tgt[1:].isdigit()):
                    defs.setdefault(tgt, []).append(
                        (s.lineno, here, s.value))
                for body in ("body", "orelse"):
                    if hasattr(s, body):
                        collect(getattr(s, body), here)

        collect(fn.body, False)
        deferred = {
            name for name, sites in defs.items()
            if name not in self.param_local
            and sites and all(in_scope for _, in_scope, _ in sites)
        }

        # Single static site: every replay must be the identical chain.
        for name in sorted(deferred):
            rhs = {_unparse(v) for _, _, v in defs[name]}
            if len(rhs) > 1:
                self._tc03(f"deferral {name}",
                           f"sunk register `{name}` replays "
                           f"{len(rhs)} distinct definitions; the "
                           "single-static-site claim fails")

        # Operand stability: nothing a replay reads may be redefined
        # inside the replay horizon.
        for name in sorted(deferred):
            lines = [ln for ln, _, _ in defs[name]]
            first, last = min(lines), max(lines)
            operands = {n.id for _, _, v in defs[name]
                        for n in ast.walk(v)
                        if isinstance(n, ast.Name)
                        and n.id.startswith("r") and n.id[1:].isdigit()}
            for op_name in sorted(operands - {name}):
                for ln, in_scope, _ in defs.get(op_name, []):
                    if not in_scope and first < ln < last:
                        self._tc03(
                            f"deferral {name}",
                            f"operand `{op_name}` of sunk register "
                            f"`{name}` is redefined inside the replay "
                            "horizon; operand stability fails")

        # Dominance: every use of a deferred register must be reached by
        # a replay on the same path.
        def check_uses(node, defined: set[str]) -> None:
            for n in ast.walk(node):
                if (isinstance(n, ast.Name)
                        and isinstance(n.ctx, ast.Load)
                        and n.id in deferred
                        and n.id not in defined):
                    self._tc03(
                        f"deferral {n.id}",
                        f"use of sunk register `{n.id}` at line "
                        f"{n.lineno} is not dominated by a replay; "
                        "the sinking claim cannot be re-proved")
                    defined.add(n.id)  # report once per chain

        def dominate(stmts, defined: set[str]) -> set[str]:
            for s in stmts:
                if isinstance(s, (ast.If, ast.While)):
                    check_uses(s.test, defined)
                    d1 = dominate(s.body, set(defined))
                    d2 = dominate(getattr(s, "orelse", []), set(defined))
                    if isinstance(s, ast.If):
                        defined |= (d1 & d2)
                    continue
                check_uses(s, defined)
                tgt = _assign_target(s)
                if tgt:
                    defined.add(tgt)
            return defined

        dominate(fn.body, set())

    # -- entry -------------------------------------------------------------

    def run(self) -> tuple[bool, list[Diagnostic]]:
        """Match the whole program; returns (exact, diagnostics)."""
        tree = ast.parse(self.source)
        fn = tree.body[0]
        stmts = fn.body
        try:
            i = self._match_prelude(stmts)
            if len(stmts) < i + len(self._EPILOGUE):
                self._tc01("epilogue", "program ends before the stats "
                           "epilogue")
            self._match_epilogue(stmts[-len(self._EPILOGUE):])
            self._match_body(self.k.body,
                             stmts[i:-len(self._EPILOGUE)],
                             _MCtx(True, "_L", [None]), "body")
        except _Stop:
            pass
        except RecursionError:  # pragma: no cover - pathological nesting
            self._tc04("body", "program too deeply nested to match; "
                       "conservative bound only")
        self._check_deferrals(fn)
        return self.exact, self.diags


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def validate_program(kernel, source: str, warp_size: int,
                     grid: tuple[int, int, int],
                     block: tuple[int, int, int],
                     blocks_per_batch: int, *,
                     key: tuple = ()) -> TraceVerdict:
    """Statically validate one generated trace program against its IR.

    Never executes the program or the kernel.  Phase 1 (the exec
    allowlist) runs first; phases 2/3 only run on a program that passed
    it — there is no point proving equivalence of a program we would
    refuse to exec.  Findings suppressed by the
    ``KNOWN_TRACE_DIVERGENCES`` ledger are downgraded to ``TC06`` info.
    """
    t0 = time.perf_counter()
    diags: list[Diagnostic] = []
    exact = True
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        diags.append(make("TC02", kernel.name, f"line {exc.lineno}",
                          f"generated program does not parse: {exc.msg}"))
        tree = None
    if tree is not None:
        diags.extend(_check_allowlist(tree, kernel.name))
        if not diags:
            checker = _Checker(kernel, source, warp_size, grid, block)
            try:
                exact, found = checker.run()
            except _Stop:  # pragma: no cover - run() already catches
                exact, found = checker.exact, checker.diags
            diags.extend(found)
    suppressed: list[Diagnostic] = []
    for d in diags:
        reason = divergence_reason(kernel.name, d.code)
        if reason is not None and d.severity >= Severity.WARNING:
            suppressed.append(make(
                "TC06", kernel.name, d.path,
                f"[{d.code}] {d.message} — suppressed: {reason}"))
        else:
            suppressed.append(d)
    diags = suppressed
    validated = not any(d.severity >= Severity.ERROR for d in diags)
    return TraceVerdict(
        key=key, kernel=kernel.name, validated=validated,
        exact=exact and validated, diagnostics=diags,
        elapsed_ms=(time.perf_counter() - t0) * 1e3)


def canonical_batch_width(kernel, block: tuple[int, int, int],
                          chunk_lanes: int = 1 << 18) -> int:
    """The blocks-per-batch the interpreter's trace tier would pick for
    this kernel at its default chunking — the geometry ``lint --traces``
    validates at."""
    from repro.isa import interpreter as _interp

    bt = block[0] * block[1] * block[2]
    bpb = max(1, chunk_lanes // max(1, bt))
    if kernel.uses_shared():
        stride = -(-max(kernel.shared_bytes, 8)
                   // _interp._SHARED_ROW_ALIGN) * _interp._SHARED_ROW_ALIGN
        bpb = min(bpb, max(1, _interp._SHARED_ARENA_BYTES // stride))
    return bpb


def validate_library(kernels: dict | None = None,
                     warp_size: int = 32) -> dict[str, "TraceVerdict | str"]:
    """Trace-compile and statically validate every library kernel at its
    canonical geometry — with ZERO kernel executions.

    Returns a name-keyed map whose values are either a
    :class:`TraceVerdict` or, for kernels the trace tier refuses, the
    bailout reason string.
    """
    from repro import kernels as _kernels
    from repro.analysis.perfstat import STATIC_LAUNCHES
    from repro.isa import tracing as _tracing

    lib = kernels if kernels is not None else {
        name: spec.ir for name, spec in _kernels.KERNEL_LIBRARY.items()}
    out: dict[str, TraceVerdict | str] = {}
    for name in sorted(lib):
        ir = lib[name]
        launch = STATIC_LAUNCHES.get(name)
        if launch is None:
            grid, block = (1, 1, 1), (256, 1, 1)
        else:
            grid = tuple(launch[0]) + (1,) * (3 - len(launch[0]))
            block = tuple(launch[1]) + (1,) * (3 - len(launch[1]))
        bpb = canonical_batch_width(ir, block)
        try:
            source = _tracing._TraceCompiler(
                ir, warp_size, grid, block, bpb).compile()
        except _tracing.TraceBailout as exc:
            out[name] = exc.reason
            continue
        except Exception:  # defensive, mirrors tracing.lookup()
            out[name] = "unsupported"
            continue
        key = _tracing.trace_key(ir, warp_size, grid, block, bpb)
        out[name] = validate_program(ir, source, warp_size, grid, block,
                                     bpb, key=key)
    return out


def traces_lint_report(
        results: dict[str, "TraceVerdict | str"]) -> LintReport:
    """Fold per-kernel verdicts into the shared lint-report shape."""
    report = LintReport()
    for name in sorted(results):
        verdict = results[name]
        if isinstance(verdict, str):
            report.add(make(
                "TC05", name, "",
                f"kernel bailed out of trace compilation ({verdict}); "
                "the interpreter tier runs it and nothing needs "
                "validation"))
        else:
            report.extend(verdict.diagnostics)
    return report


def trace_agreement_summary(
        results: dict[str, "TraceVerdict | str"]) -> dict[str, int]:
    """Rollup counters for the service's ``tracesan_*`` gauges."""
    verdicts = [v for v in results.values()
                if isinstance(v, TraceVerdict)]
    diags = [d for v in verdicts for d in v.diagnostics]
    return {
        "kernels_total": len(results),
        "validated": sum(1 for v in verdicts if v.validated),
        "exact": sum(1 for v in verdicts if v.exact),
        "inexact": sum(1 for v in verdicts
                       if v.validated and not v.exact),
        "bailed_out": sum(1 for v in results.values()
                          if isinstance(v, str)),
        "errors": sum(1 for d in diags
                      if d.severity >= Severity.ERROR),
        "warnings": sum(1 for d in diags
                        if d.severity == Severity.WARNING),
        "suppressed": sum(1 for d in diags if d.code == "TC06"),
    }


def lint_traces(kernels: dict | None = None,
                warp_size: int = 32) -> LintReport:
    """``gpu-compat lint --traces`` entry: sweep, fold, report."""
    return traces_lint_report(validate_library(kernels, warp_size))
