"""Source-to-source translators between programming models.

These realize the "indirect" and "limited" support routes of Figure 1:

* :mod:`repro.translate.hipify` — AMD HIPIFY: CUDA C++ → HIP C++
  (descriptions 3/18).
* :mod:`repro.translate.syclomatic` — Intel SYCLomatic / DPC++
  Compatibility Tool: CUDA C++ → SYCL (descriptions 5/31).
* :mod:`repro.translate.gpufort` — AMD GPUFORT: CUDA Fortran /
  OpenACC Fortran → OpenMP Fortran (research, stale; descriptions
  19/23).
* :mod:`repro.translate.acc2omp` — Intel Application Migration Tool
  for OpenACC to OpenMP (descriptions 22/23/36/37).

Each translator offers two levels:

* ``translate_unit(tu)`` — rewrite an embedded
  :class:`~repro.frontends.source.TranslationUnit` (model + feature
  tags) so a target-model toolchain can compile it; untranslatable
  features raise :class:`~repro.errors.TranslationError`, which is how
  partial tools measure as partial coverage.
* ``translate_source(text)`` — rewrite real source *strings* in the
  models' surface syntax (``cudaMalloc`` → ``hipMalloc``; ``!$acc
  parallel loop`` → ``!$omp target teams distribute parallel do``),
  the level the real tools operate at.
"""

from repro.translate.base import SourceTranslator, TranslationReport  # noqa: F401
from repro.translate.hipify import Hipify  # noqa: F401
from repro.translate.syclomatic import Syclomatic  # noqa: F401
from repro.translate.gpufort import Gpufort  # noqa: F401
from repro.translate.acc2omp import AccToOmp  # noqa: F401
