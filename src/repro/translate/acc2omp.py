"""Intel Application Migration Tool for OpenACC to OpenMP (descr. 36/37).

A Python-based, directive-level source converter.  It handles the
common structured constructs (``parallel``/``kernels``/``data`` regions
with data clauses and loops); the parts of OpenACC that lack a clean
directive-for-directive image — reductions across gangs, explicit
gang/worker/vector mappings, async queues, ``serial`` — are emitted as
TODO comments for the programmer, i.e. they do not translate.  That
narrow coverage is why OpenACC on Intel GPUs rates *limited support*
rather than indirect support.
"""

from __future__ import annotations

import re

from repro.compilers.features import OPENACC_30
from repro.enums import Language, Maturity, Model, Provider
from repro.translate.base import SourceTranslator


class AccToOmp(SourceTranslator):
    """OpenACC (C++ or Fortran) → OpenMP."""

    NAME = "acc2omp"
    PROVIDER = Provider.INTEL
    MATURITY = Maturity.PRODUCTION
    SOURCE_MODEL = Model.OPENACC
    TARGET_MODEL = Model.OPENMP
    LANGUAGES = (Language.CPP, Language.FORTRAN)

    TAG_MAP = {
        "acc:parallel": ("omp:target", "omp:teams", "omp:distribute",
                         "omp:parallel_for"),
        "acc:kernels": ("omp:target", "omp:teams", "omp:parallel_for"),
        "acc:loop": ("omp:parallel_for",),
        "acc:data": ("omp:target", "omp:map"),
        "acc:copyin_copyout": ("omp:map",),
        # Emitted as TODO comments by the real tool:
        "acc:reduction": None,
        "acc:gang_worker_vector": None,
        "acc:async": None,
        "acc:wait": None,
        "acc:serial": None,
        "acc:attach": None,
        "acc:self": None,
    }

    IDENTIFIER_MAP = {
        "#pragma acc parallel loop": "#pragma omp target teams distribute parallel for",
        "#pragma acc kernels": "#pragma omp target teams",
        "#pragma acc data": "#pragma omp target data",
        "#pragma acc enter data": "#pragma omp target enter data",
        "#pragma acc exit data": "#pragma omp target exit data",
        "!$acc parallel loop": "!$omp target teams distribute parallel do",
        "!$acc kernels": "!$omp target teams",
        "!$acc data": "!$omp target data",
        "!$acc end parallel": "!$omp end target teams",
        "copyin(": "map(to: ",
        "copyout(": "map(from: ",
        "copy(": "map(tofrom: ",
        "present(": "map(alloc: ",
    }

    PATTERN_RULES = (
        # async/gang/worker/vector clauses are dropped with a marker.
        (r"(async|gang|worker|vector(_length)?|num_gangs|num_workers)\s*(\([^)]*\))?",
         r"/* TODO(acc2omp): unsupported clause \1 */"),
    )

    _ACC_IDENT = re.compile(r"(#pragma\s+acc\s+\w+|!\$acc\s+\w+)")

    def leftover_identifiers(self, text: str) -> list[str]:
        return sorted(set(self._ACC_IDENT.findall(text)))

    SOURCE_TAG_DOMAIN = OPENACC_30

    #: Literal witness in both host languages (the tool accepts C++ and
    #: Fortran).  Exercises every directive/clause spelling in the
    #: identifier table and carries gang/vector/async clauses so the
    #: TODO-comment rule provably fires (and must warn).
    WITNESS_SOURCE = """\
#include <openacc.h>

void triad(int n, double* a, const double* b, const double* c) {
    #pragma acc data copyin(b[0:n], c[0:n]) copyout(a[0:n])
    {
        #pragma acc parallel loop gang vector_length(128) async(1)
        for (int i = 0; i < n; ++i)
            a[i] = b[i] + 0.5 * c[i];
        #pragma acc kernels
        for (int i = 0; i < n; ++i)
            a[i] = 2.0 * a[i];
    }
    #pragma acc enter data copy(a[0:n])
    #pragma acc exit data present(a[0:n])
}

! Fortran flavor of the same constructs
!$acc data copyin(x)
!$acc parallel loop num_gangs(64) worker
! do i = 1, n ; y(i) = a * x(i) + y(i) ; end do
!$acc end parallel
!$acc kernels
! do i = 1, n ; y(i) = 2.0 * y(i) ; end do
"""
