"""SYCLomatic: Intel's CUDA → SYCL migration tool (descriptions 5/31).

Open-source sibling of the commercial *DPC++ Compatibility Tool*.
CUDA's execution and memory constructs map onto SYCL equivalents
(kernels → ``parallel_for`` over ``nd_range``, streams → in-order
queues, managed memory → USM shared allocations, cuBLAS → oneMKL);
CUDA task graphs and cooperative groups have no SYCL 2020 equivalent
and are reported as unmigratable, which is what keeps the converted
coverage below HIPIFY's.
"""

from __future__ import annotations

import re

from repro.compilers.features import CUDA_FULL
from repro.enums import Language, Maturity, Model, Provider
from repro.translate.base import SourceTranslator


class Syclomatic(SourceTranslator):
    """CUDA C++ → SYCL C++."""

    NAME = "syclomatic"
    PROVIDER = Provider.INTEL
    MATURITY = Maturity.PRODUCTION
    SOURCE_MODEL = Model.CUDA
    TARGET_MODEL = Model.SYCL
    LANGUAGES = (Language.CPP,)

    TAG_MAP = {
        "cuda:kernels": ("sycl:queues", "sycl:nd_range"),
        "cuda:memcpy": ("sycl:queues",),
        "cuda:streams": ("sycl:queues",),
        "cuda:events": ("sycl:events",),
        "cuda:managed_memory": ("sycl:usm",),
        "cuda:libraries": ("sycl:queues",),  # cuBLAS -> oneMKL over queues
        "cuda:graphs": None,
        "cuda:cooperative_groups": None,
    }

    IDENTIFIER_MAP = {
        "cudaMallocManaged": "sycl::malloc_shared",
        "cudaMalloc": "sycl::malloc_device",
        "cudaMemcpy": "q.memcpy",
        "cudaFree": "sycl::free",
        "cudaStreamCreate": "sycl::queue",
        "cudaStreamSynchronize": "q.wait",
        "cudaStream_t": "sycl::queue",
        "cudaEventElapsedTime": "event.profiling_info",
        "cudaEvent_t": "sycl::event",
        "cudaDeviceSynchronize": "q.wait",
        "cublasDaxpy": "oneapi::mkl::blas::axpy",
        "cublasDdot": "oneapi::mkl::blas::dot",
        "cuda_runtime.h": "sycl/sycl.hpp",
        "__global__": "/* kernel lambda */",
        "threadIdx.x": "item.get_local_id(0)",
        "blockIdx.x": "item.get_group(0)",
        "blockDim.x": "item.get_local_range(0)",
    }

    PATTERN_RULES = (
        (
            r"(\w+)\s*<<<\s*([^,>]+)\s*,\s*([^,>]+)\s*>>>\s*\(([^)]*)\)",
            r"q.parallel_for(sycl::nd_range<1>(\2*\3, \3), "
            r"[=](sycl::nd_item<1> item) { \1(\4); })",
        ),
    )

    _CUDA_IDENT = re.compile(r"\b(cuda[A-Z]\w*|cublas[A-Z]\w*)\b")

    def leftover_identifiers(self, text: str) -> list[str]:
        return sorted(set(self._CUDA_IDENT.findall(text)))

    SOURCE_TAG_DOMAIN = CUDA_FULL

    #: Literal CUDA witness covering the identifier surface and the
    #: kernel-launch rewrite (see :class:`Hipify` for why it must not be
    #: generated from IDENTIFIER_MAP).  Sticks to the API subset
    #: SYCLomatic migrates — no graph or memcpy-kind constants.
    WITNESS_SOURCE = """\
#include <cuda_runtime.h>

__global__ void scale(int n, double a, double* x) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) x[i] = a * x[i];
}

int run(int n, double a, const double* hx, double* hy) {
    double *x, *u;
    cudaMalloc(&x, n * sizeof(double));
    cudaMallocManaged(&u, n * sizeof(double));
    cudaMemcpy(x, hx, n * sizeof(double));
    cudaStream_t q0;
    cudaStreamCreate(&q0);
    scale<<<n / 256, 256>>>(n, a, x);
    cudaStreamSynchronize(q0);
    cudaEvent_t done;
    float ms = 0.0f;
    cudaEventElapsedTime(&ms, done, done);
    double dot = 0.0;
    cublasDaxpy(handle, n, &a, x, 1, hy, 1);
    cublasDdot(handle, n, x, 1, hy, 1, &dot);
    cudaDeviceSynchronize();
    cudaMemcpy(hy, x, n * sizeof(double));
    cudaFree(x);
    cudaFree(u);
    return 0;
}
"""
