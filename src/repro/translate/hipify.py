"""HIPIFY: AMD's CUDA → HIP conversion tool (descriptions 3/18).

"As HIP is strongly inspired by CUDA, the mapping is relatively
straight-forward; API calls are named similarly (for example:
``hipMalloc()`` instead of ``cudaMalloc()``)" — the identifier table
below is that mapping.  What does *not* convert is the CUDA-only
cooperative-groups machinery, which HIPIFY flags for manual porting;
everything else (kernels, copies, streams, events, managed memory,
graphs, cuBLAS→hipBLAS) goes through.
"""

from __future__ import annotations

import re

from repro.compilers.features import CUDA_FULL
from repro.enums import Language, Maturity, Model, Provider
from repro.translate.base import SourceTranslator


class Hipify(SourceTranslator):
    """CUDA C++ → HIP C++."""

    NAME = "hipify"
    PROVIDER = Provider.AMD
    MATURITY = Maturity.PRODUCTION
    SOURCE_MODEL = Model.CUDA
    TARGET_MODEL = Model.HIP
    LANGUAGES = (Language.CPP,)

    TAG_MAP = {
        "cuda:kernels": ("hip:kernels",),
        "cuda:memcpy": ("hip:memcpy",),
        "cuda:streams": ("hip:streams",),
        "cuda:events": ("hip:events",),
        "cuda:managed_memory": ("hip:managed_memory",),
        "cuda:libraries": ("hip:libraries",),
        "cuda:graphs": ("hip:graphs",),
        # Cooperative groups have no HIP equivalent HIPIFY will emit.
        "cuda:cooperative_groups": None,
    }

    IDENTIFIER_MAP = {
        "cudaMallocManaged": "hipMallocManaged",
        "cudaMalloc": "hipMalloc",
        "cudaMemcpyAsync": "hipMemcpyAsync",
        "cudaMemcpyDeviceToHost": "hipMemcpyDeviceToHost",
        "cudaMemcpyHostToDevice": "hipMemcpyHostToDevice",
        "cudaMemcpy": "hipMemcpy",
        "cudaFree": "hipFree",
        "cudaStreamCreate": "hipStreamCreate",
        "cudaStreamDestroy": "hipStreamDestroy",
        "cudaStreamSynchronize": "hipStreamSynchronize",
        "cudaStream_t": "hipStream_t",
        "cudaEventCreate": "hipEventCreate",
        "cudaEventRecord": "hipEventRecord",
        "cudaEventSynchronize": "hipEventSynchronize",
        "cudaEventElapsedTime": "hipEventElapsedTime",
        "cudaEvent_t": "hipEvent_t",
        "cudaDeviceSynchronize": "hipDeviceSynchronize",
        "cudaGetDeviceCount": "hipGetDeviceCount",
        "cudaSetDevice": "hipSetDevice",
        "cudaGraphLaunch": "hipGraphLaunch",
        "cudaGraph_t": "hipGraph_t",
        "cudaError_t": "hipError_t",
        "cudaSuccess": "hipSuccess",
        "cublasSaxpy": "hipblasSaxpy",  # the paper's own example
        "cublasDaxpy": "hipblasDaxpy",
        "cublasDdot": "hipblasDdot",
        "cublasHandle_t": "hipblasHandle_t",
        "cublasCreate": "hipblasCreate",
        "cuda_runtime.h": "hip/hip_runtime.h",
    }

    #: ``kernel<<<grid, block>>>(args)`` → hipLaunchKernelGGL(...)
    PATTERN_RULES = (
        (
            r"(\w+)\s*<<<\s*([^,>]+)\s*,\s*([^,>]+)\s*>>>\s*\(",
            r"hipLaunchKernelGGL(\1, \2, \3, 0, 0, ",
        ),
    )

    _CUDA_IDENT = re.compile(r"\b(cuda[A-Z]\w*|cublas[A-Z]\w*)\b")

    def leftover_identifiers(self, text: str) -> list[str]:
        return sorted(set(self._CUDA_IDENT.findall(text)))

    SOURCE_TAG_DOMAIN = CUDA_FULL

    #: Canonical CUDA snippet exercising the whole identifier surface and
    #: the kernel-launch rewrite.  Deliberately a literal (not generated
    #: from IDENTIFIER_MAP): transval translates it and reports surviving
    #: ``cuda*``/``cublas*`` identifiers, so a deleted map entry shows up
    #: as a TV04 diagnostic instead of silently shrinking the witness.
    WITNESS_SOURCE = """\
#include <cuda_runtime.h>

__global__ void axpy(int n, double a, const double* x, double* y);

int run(int n, double a, const double* hx, double* hy) {
    int ndev = 0;
    cudaError_t err = cudaGetDeviceCount(&ndev);
    if (err != cudaSuccess) return 1;
    cudaSetDevice(0);
    double *x, *y, *u;
    cudaMalloc(&x, n * sizeof(double));
    cudaMalloc(&y, n * sizeof(double));
    cudaMallocManaged(&u, n * sizeof(double));
    cudaMemcpy(x, hx, n * sizeof(double), cudaMemcpyHostToDevice);
    cudaStream_t stream;
    cudaStreamCreate(&stream);
    cudaMemcpyAsync(y, hy, n * sizeof(double), cudaMemcpyHostToDevice, stream);
    cudaEvent_t start, stop;
    cudaEventCreate(&start);
    cudaEventCreate(&stop);
    cudaEventRecord(start, stream);
    axpy<<<n / 256, 256>>>(n, a, x, y);
    cudaEventRecord(stop, stream);
    cudaEventSynchronize(stop);
    float ms = 0.0f;
    cudaEventElapsedTime(&ms, start, stop);
    cublasHandle_t handle;
    cublasCreate(&handle);
    float sa = (float)a; double dot = 0.0;
    cublasSaxpy(handle, n, &sa, (float*)x, 1, (float*)y, 1);
    cublasDaxpy(handle, n, &a, x, 1, y, 1);
    cublasDdot(handle, n, x, 1, y, 1, &dot);
    cudaGraph_t graph;
    cudaGraphLaunch(graph_exec, stream);
    cudaStreamSynchronize(stream);
    cudaMemcpy(hy, y, n * sizeof(double), cudaMemcpyDeviceToHost);
    cudaDeviceSynchronize();
    cudaStreamDestroy(stream);
    cudaFree(x);
    cudaFree(y);
    cudaFree(u);
    return 0;
}
"""
