"""Translator base class: tag mapping plus string rewriting."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.enums import Language, Maturity, Model, Provider
from repro.errors import TranslationError
from repro.frontends.source import TranslationUnit


@dataclass
class TranslationReport:
    """What a source-string translation did (mirrors HIPIFY's stats).

    Attributes:
        replacements: Total identifier + pattern replacements applied.
        warnings: Structured warnings — unconverted identifiers and
            constructs dropped to TODO comments.  Everything a caller
            needs to know is here, not only in the output text.
        rule_hits: Fire count per ``PATTERN_RULES`` entry, by index;
            the transval dead-rule audit (TV05) consumes this.
    """

    replacements: int = 0
    warnings: list[str] = field(default_factory=list)
    rule_hits: list[int] = field(default_factory=list)


@dataclass(frozen=True)
class TranslationOrigin:
    """Provenance stamped on a translated :class:`TranslationUnit`.

    Carries what translation validation needs to re-check the hop:
    the translator that produced the unit and the unit it consumed.
    ``Toolchain.compile(sanitize=True)`` validates any unit carrying an
    origin before compiling it.
    """

    translator: "SourceTranslator"
    source: TranslationUnit

    def cache_token(self) -> tuple[str, str]:
        """Distinguishes translated units in sanitize-aware caches."""
        return (self.translator.NAME, self.source.fingerprint())


class SourceTranslator:
    """One source-to-source conversion tool.

    Subclasses define:

    * ``SOURCE_MODEL`` / ``TARGET_MODEL`` (+ accepted languages);
    * ``TAG_MAP`` — feature-tag translation; a tag mapping to ``None``
      is *explicitly untranslatable* (raises); a tag absent from the
      map and not universally safe also raises;
    * ``IDENTIFIER_MAP`` — exact source-identifier replacements;
    * ``PATTERN_RULES`` — ``(regex, replacement)`` pairs applied after
      identifiers;
    * ``SOURCE_TAG_DOMAIN`` — every feature tag the source model can
      put on a unit (from :mod:`repro.compilers.features`); transval's
      conservation check (TV01) audits ``TAG_MAP`` against it;
    * ``WITNESS_SOURCE`` — a canonical source snippet exercising the
      tool's identifier surface and every rewrite rule; transval
      translates it to audit identifier completeness (TV04), dead
      rules (TV05) and silent TODO drops (TV06).
    """

    NAME = "translator"
    PROVIDER = Provider.COMMUNITY
    MATURITY = Maturity.PRODUCTION
    SOURCE_MODEL: Model = Model.CUDA
    TARGET_MODEL: Model = Model.HIP
    LANGUAGES: tuple[Language, ...] = (Language.CPP,)
    TAG_MAP: dict[str, tuple[str, ...] | None] = {}
    IDENTIFIER_MAP: dict[str, str] = {}
    PATTERN_RULES: tuple[tuple[str, str], ...] = ()
    SOURCE_TAG_DOMAIN: frozenset[str] = frozenset()
    WITNESS_SOURCE: str = ""
    #: Tags passed through untouched (hardware-level tags).
    PASSTHROUGH = frozenset({"barrier", "atomics", "shared_memory", "shuffle"})

    # -- unit-level translation ---------------------------------------------

    def translate_unit(self, tu: TranslationUnit) -> TranslationUnit:
        if tu.model is not self.SOURCE_MODEL:
            raise TranslationError(
                self.NAME, tu.model.value,
                f"tool translates {self.SOURCE_MODEL.value} only",
            )
        if tu.language not in self.LANGUAGES:
            raise TranslationError(
                self.NAME, tu.language.value,
                f"tool handles {[l.value for l in self.LANGUAGES]}",
            )
        new_tags: set[str] = set()
        for tag in sorted(tu.all_features()):
            if tag in self.PASSTHROUGH:
                continue  # kernels carry these; they translate 1:1
            if tag not in self.TAG_MAP:
                raise TranslationError(self.NAME, tag, "construct not recognized")
            mapped = self.TAG_MAP[tag]
            if mapped is None:
                raise TranslationError(
                    self.NAME, tag, "construct has no equivalent in the target model"
                )
            new_tags.update(mapped)
        out = TranslationUnit(
            name=f"{tu.name}.{self.NAME}",
            model=self.TARGET_MODEL,
            language=self.target_language(tu.language),
            kernels=list(tu.kernels),
            features=new_tags,
            origin=TranslationOrigin(translator=self, source=tu),
        )
        return out

    def target_language(self, language: Language) -> Language:
        """Most tools keep the language; GPUFORT-style tools may not."""
        return language

    # -- string-level translation ----------------------------------------------

    def translate_source(self, text: str) -> tuple[str, TranslationReport]:
        """Rewrite a source string; returns (new_text, report)."""
        report = TranslationReport()
        out = text
        for old, new in self.IDENTIFIER_MAP.items():
            count = out.count(old)
            if count:
                out = out.replace(old, new)
                report.replacements += count
        for pattern, replacement in self.PATTERN_RULES:
            if "TODO" in replacement:
                # Constructs about to be dropped as TODO comments must
                # also surface as structured warnings, not just output
                # text (the real acc2omp buries them in comments).
                dropped = [m.group(0) for m in re.finditer(pattern, out)]
                for construct in dropped:
                    report.warnings.append(
                        f"{self.NAME}: unsupported construct "
                        f"'{construct.strip()}' rewritten to a TODO comment"
                    )
            out, n = re.subn(pattern, replacement, out)
            report.replacements += n
            report.rule_hits.append(n)
        for leftover in self.leftover_identifiers(out):
            report.warnings.append(
                f"{self.NAME}: unconverted identifier '{leftover}'"
            )
        return out, report

    def leftover_identifiers(self, text: str) -> list[str]:
        """Source-model identifiers still present after translation."""
        return []
