"""GPUFORT: AMD's Fortran source translator (descriptions 19/23).

A research project converting CUDA Fortran and OpenACC Fortran into
either Fortran-with-OpenMP (compiled by AOMP) or Fortran with hipfort
bindings and extracted C kernels.  "The covered functionality is
driven by use-case requirements; the last commit is two years old" —
modeled as research maturity plus a deliberately narrow construct map:
the basic kernel/loop constructs convert, the asynchronous machinery
does not.
"""

from __future__ import annotations

import re

from repro.compilers.features import CUDA_FORTRAN_FULL, OPENACC_30
from repro.enums import Language, Maturity, Model, Provider
from repro.errors import TranslationError
from repro.frontends.source import TranslationUnit
from repro.translate.base import SourceTranslator


class Gpufort(SourceTranslator):
    """CUDA Fortran / OpenACC Fortran → OpenMP Fortran.

    One instance handles one source model; construct with
    ``Gpufort(source=Model.CUDA)`` or ``Gpufort(source=Model.OPENACC)``.
    """

    NAME = "gpufort"
    PROVIDER = Provider.AMD
    MATURITY = Maturity.RESEARCH
    TARGET_MODEL = Model.OPENMP
    LANGUAGES = (Language.FORTRAN,)

    _CUDA_TAGS = {
        "cuf:kernels": ("omp:target", "omp:teams", "omp:distribute",
                        "omp:parallel_for", "omp:map"),
        "cuf:cuf_kernels": ("omp:target", "omp:teams", "omp:distribute",
                            "omp:parallel_for", "omp:map"),
        "cuda:memcpy": ("omp:map",),
        # Use-case-driven coverage: async machinery never made it in.
        "cuda:streams": None,
        "cuda:events": None,
        "cuda:managed_memory": None,
        "cuda:libraries": None,
        "cuda:graphs": None,
        "cuda:cooperative_groups": None,
    }
    _ACC_TAGS = {
        "acc:parallel": ("omp:target", "omp:teams", "omp:parallel_for"),
        "acc:kernels": ("omp:target", "omp:teams", "omp:parallel_for"),
        "acc:loop": ("omp:parallel_for",),
        "acc:data": ("omp:map",),
        "acc:copyin_copyout": ("omp:map",),
        "acc:reduction": ("omp:reduction",),
        "acc:gang_worker_vector": None,
        "acc:async": None,
        "acc:wait": None,
        "acc:serial": None,
        "acc:attach": None,
        "acc:self": None,
    }

    IDENTIFIER_MAP = {
        "!$cuf kernel do": "!$omp target teams distribute parallel do",
        "attributes(global)": "!$omp declare target",
        "cudaMalloc": "omp_target_alloc",
        "cudaMemcpy": "omp_target_memcpy",
        "!$acc parallel loop": "!$omp target teams distribute parallel do",
        "!$acc kernels": "!$omp target teams",
        "!$acc data": "!$omp target data",
        "!$acc end": "!$omp end",
        "copyin": "map(to:",
        "copyout": "map(from:",
    }

    def __init__(self, source: Model = Model.CUDA):
        if source not in (Model.CUDA, Model.OPENACC):
            raise TranslationError(self.NAME, source.value,
                                   "handles CUDA Fortran or OpenACC Fortran")
        self.SOURCE_MODEL = source
        self.TAG_MAP = self._CUDA_TAGS if source is Model.CUDA else self._ACC_TAGS
        self.SOURCE_TAG_DOMAIN = (
            CUDA_FORTRAN_FULL if source is Model.CUDA else OPENACC_30
        )

    def translate_unit(self, tu: TranslationUnit) -> TranslationUnit:
        out = super().translate_unit(tu)
        # GPUFORT emits Fortran-with-OpenMP; language stays Fortran.
        return out

    _CUF_IDENT = re.compile(r"(!\$cuf\s+\w+|!\$acc\s+\w+|cuda[A-Z]\w*)")

    def leftover_identifiers(self, text: str) -> list[str]:
        return sorted(set(self._CUF_IDENT.findall(text)))

    #: One Fortran witness covers both source modes — the identifier
    #: table is shared, only TAG_MAP switches per instance.
    WITNESS_SOURCE = """\
module device_kernels
contains
  attributes(global) subroutine saxpy(n, a, x, y)
    integer, value :: n
    real(8), value :: a
    real(8) :: x(n), y(n)
  end subroutine saxpy
end module device_kernels

program main
  use device_kernels
  call cudaMalloc(dx, n * 8)
  call cudaMemcpy(dx, hx, n * 8)

  !$cuf kernel do
  do i = 1, n
    y(i) = a * x(i) + y(i)
  end do

  !$acc data copyin(x) copyout(y)
  !$acc parallel loop
  do i = 1, n
    y(i) = a * x(i) + y(i)
  end do
  !$acc end parallel
  !$acc kernels
  do i = 1, n
    y(i) = 2.0d0 * y(i)
  end do
  !$acc end kernels
  !$acc end data
end program main
"""
