"""The service wire-format contract: versioning, errors, responses.

One place defines what travels between a :class:`MatrixService` and its
clients, whatever the transport:

* **Schema versioning** — every JSON payload (success *and* error)
  carries a top-level ``schema_version``; clients check it and raise
  :class:`SchemaVersionError` on mismatch rather than misparse.
* **Error envelope** — failures are ``{"schema_version": N, "error":
  {"code": ..., "message": ...}}``.  The ``code`` round-trips the typed
  exception: an :class:`HttpClient` re-raises the same
  :class:`ServiceError` subclass the service raised in-process.
* **Typed responses** — each endpoint returns a small dataclass wrapping
  the raw payload with named accessors.  The wrapper also supports
  ``resp["key"]`` / ``"key" in resp`` / ``resp.get(...)`` so payloads
  stay grep-able, and ``.data`` strips the version field for
  transport-parity comparisons.
* **The client protocol** — :class:`MatrixClient` is the one interface
  both ``InProcessClient`` and ``HttpClient`` implement (they share the
  method bodies too, via ``server._BaseClient``; only ``_request``
  differs).

Versioning policy (also in DESIGN.md): additive payload changes (new
keys) do not bump ``SCHEMA_VERSION``; renames, removals, and semantic
changes do.  Clients reject any version other than their own — the
service and its clients ship from one tree, so a skew is a deployment
error worth failing loudly on.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable

#: Version 1 was the unversioned PR-4 wire format (no ``schema_version``
#: field, string errors).  Version 2 added the version field, the error
#: envelope, and the ``/perf/*`` endpoints.  Version 3 added the first
#: POST endpoint (``/kernel/submit``) and its two error codes
#: (``kernel_rejected``, ``payload_too_large``) — a semantic change
#: (clients must be able to send bodies), hence a bump.  Version 4 is
#: the operational-API redesign: ``/healthz`` and ``/metrics`` carry a
#: typed ``execution`` block (:class:`ExecutionInfo`), the ``/admin/*``
#: endpoints exist, and a new error code (``read_only``) can come back
#: from mutating endpoints — a semantic change, hence a bump.
SCHEMA_VERSION = 4

#: One previous generation is *readable* with a deprecation warning (a
#: v4 client pointed at a still-running v3 server keeps working while
#: the fleet rolls); anything older or newer is rejected.
COMPATIBLE_SCHEMA_VERSIONS = (SCHEMA_VERSION - 1, SCHEMA_VERSION)


@dataclass(frozen=True)
class ExecutionInfo:
    """The typed execution block carried by ``/healthz`` and ``/metrics``.

    Describes how the serving process evaluates matrices: which
    scheduler backend, how many workers, and the fleet's operational
    counters (store reuse, probe work, crash/restart totals).
    """

    backend: str          # "thread" | "process"
    workers: int          # configured job count
    store_hits: int       # compat + perf store hits, this process
    probes_run: int       # probe executions, this process
    worker_crashes: int   # dead worker processes (real or injected)
    worker_restarts: int  # process-pool rebuilds after a crash

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "store_hits": self.store_hits,
            "probes_run": self.probes_run,
            "worker_crashes": self.worker_crashes,
            "worker_restarts": self.worker_restarts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionInfo":
        return cls(**{k: payload[k] for k in (
            "backend", "workers", "store_hits", "probes_run",
            "worker_crashes", "worker_restarts")})


# -- typed errors -------------------------------------------------------------


class ServiceError(Exception):
    """Base class of every service-API failure.

    ``status`` is the HTTP status the error maps to; ``code`` is the
    stable machine-readable identifier carried in the error envelope.
    """

    code = "error"

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class BadRequestError(ServiceError):
    """Malformed query (unknown format, bad parameter combination)."""

    code = "bad_request"

    def __init__(self, message: str, status: int = 400):
        super().__init__(message, status)


class NotFoundError(ServiceError):
    """Unknown endpoint, vendor, model, language, or cell."""

    code = "not_found"

    def __init__(self, message: str, status: int = 404):
        super().__init__(message, status)


class RemoteServerError(ServiceError):
    """The server failed internally (HTTP 5xx or undecodable reply)."""

    code = "server_error"

    def __init__(self, message: str, status: int = 500):
        super().__init__(message, status)


class SchemaVersionError(ServiceError):
    """The reply's ``schema_version`` does not match this client."""

    code = "schema_version"

    def __init__(self, message: str, status: int = 200):
        super().__init__(message, status)


class KernelRejectedError(ServiceError):
    """A submitted kernel failed jit compilation or validation.

    The message is the :class:`~repro.errors.JitTypeError` text, which
    carries the source location of the offending construct.
    """

    code = "kernel_rejected"

    def __init__(self, message: str, status: int = 422):
        super().__init__(message, status)


class PayloadTooLargeError(ServiceError):
    """A submitted kernel exceeds the server-side source size limit."""

    code = "payload_too_large"

    def __init__(self, message: str, status: int = 413):
        super().__init__(message, status)


class ReadOnlyError(ServiceError):
    """A mutating endpoint was called on a read-only server.

    Raised by the ``/admin/*`` mutators when the server was started
    with ``serve --read-only``; maps to HTTP 403.
    """

    code = "read_only"

    def __init__(self, message: str, status: int = 403):
        super().__init__(message, status)


_ERROR_TYPES: dict[str, type[ServiceError]] = {
    cls.code: cls
    for cls in (BadRequestError, NotFoundError, RemoteServerError,
                SchemaVersionError, KernelRejectedError,
                PayloadTooLargeError, ReadOnlyError)
}


def versioned(payload: dict) -> dict:
    """Stamp a success payload with the current schema version."""
    return {"schema_version": SCHEMA_VERSION, **payload}


def error_envelope(exc: ServiceError) -> dict:
    """The one error wire shape (versioned like every payload)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "error": {"code": exc.code, "message": str(exc)},
    }


def error_from_payload(status: int, payload: object) -> ServiceError:
    """Reconstruct the typed error a failed HTTP reply carries."""
    if isinstance(payload, dict):
        err = payload.get("error")
        if isinstance(err, dict):
            cls = _ERROR_TYPES.get(err.get("code"), RemoteServerError)
            exc = cls(err.get("message", f"HTTP {status}"))
            exc.status = status
            return exc
    return RemoteServerError(f"HTTP {status}", status=status)


def check_schema_version(payload: dict) -> dict:
    """Reject payloads from an incompatible schema generation.

    The current version passes silently; the immediately previous one
    passes with a :class:`DeprecationWarning` (v4 is additive over v3's
    key set, so a v3 payload still parses — warn rather than hard-fail
    while a mixed-version fleet rolls); anything else raises.
    """
    got = payload.get("schema_version")
    if got == SCHEMA_VERSION:
        return payload
    if got in COMPATIBLE_SCHEMA_VERSIONS:
        warnings.warn(
            f"server speaks deprecated schema_version={got}; this client "
            f"prefers {SCHEMA_VERSION} — upgrade the server",
            DeprecationWarning, stacklevel=2)
        return payload
    raise SchemaVersionError(
        f"server speaks schema_version={got!r}, this client requires "
        f"one of {COMPATIBLE_SCHEMA_VERSIONS}")


# -- typed responses ----------------------------------------------------------


@dataclass
class ApiResponse:
    """A versioned payload with dict-style *and* named access."""

    payload: dict

    @property
    def schema_version(self) -> int:
        return self.payload["schema_version"]

    @property
    def data(self) -> dict:
        """The payload minus the version stamp (for parity checks)."""
        return {k: v for k, v in self.payload.items()
                if k != "schema_version"}

    def __getitem__(self, key: str):
        return self.payload[key]

    def get(self, key: str, default=None):
        return self.payload.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self.payload

    def __iter__(self) -> Iterator[str]:
        return iter(self.payload)


class HealthResponse(ApiResponse):
    @property
    def status(self) -> str:
        return self.payload["status"]

    @property
    def built(self) -> bool:
        return self.payload["built"]

    @property
    def cells(self) -> int:
        return self.payload["cells"]

    @property
    def execution(self) -> ExecutionInfo:
        """The typed v4 execution block (backend, workers, fleet stats)."""
        return ExecutionInfo.from_dict(self.payload["execution"])


class CellResponse(ApiResponse):
    @property
    def primary(self) -> str:
        return self.payload["primary"]

    @property
    def secondary(self) -> str | None:
        return self.payload["secondary"]

    @property
    def routes(self) -> list[dict]:
        return self.payload["routes"]


class TableResponse(ApiResponse):
    @property
    def format(self) -> str:
        return self.payload["format"]

    @property
    def table(self) -> str:
        return self.payload["table"]


class AdviseResponse(ApiResponse):
    @property
    def scope(self) -> str:
        return self.payload["scope"]

    @property
    def recommendations(self) -> list[str]:
        return self.payload["recommendations"]


class LintReportResponse(ApiResponse):
    @property
    def diagnostics(self) -> list[dict]:
        return self.payload["diagnostics"]

    @property
    def counts(self) -> dict:
        return self.payload["counts"]


class MetricsResponse(ApiResponse):
    @property
    def counters(self) -> dict:
        return self.payload["counters"]

    @property
    def gauges(self) -> dict:
        return self.payload["gauges"]

    @property
    def histograms(self) -> dict:
        return self.payload["histograms"]

    @property
    def execution(self) -> ExecutionInfo:
        """The typed v4 execution block (backend, workers, fleet stats)."""
        return ExecutionInfo.from_dict(self.payload["execution"])


class AdminStoresResponse(ApiResponse):
    """``GET /admin/stores``: entry counts, corruption, fingerprints."""

    @property
    def matrix(self) -> dict:
        return self.payload["matrix"]

    @property
    def perf(self) -> dict:
        return self.payload["perf"]


class StoresClearResponse(ApiResponse):
    """``POST /admin/stores/clear``: what was deleted."""

    @property
    def cleared(self) -> bool:
        return self.payload["cleared"]

    @property
    def removed(self) -> dict:
        return self.payload["removed"]


class PerfMatrixResponse(ApiResponse):
    @property
    def params(self) -> dict:
        return self.payload["params"]

    @property
    def cells(self) -> list[dict]:
        return self.payload["cells"]

    @property
    def n_cells(self) -> int:
        return self.payload["n_cells"]


class PerfCellResponse(ApiResponse):
    @property
    def supported(self) -> bool:
        return self.payload["supported"]

    @property
    def efficiency(self) -> float:
        return self.payload["efficiency"]

    @property
    def best_route(self) -> str | None:
        return self.payload["best_route"]

    @property
    def routes(self) -> list[dict]:
        return self.payload["routes"]


class PortabilityResponse(ApiResponse):
    @property
    def params(self) -> dict:
        return self.payload["params"]

    @property
    def rows(self) -> list[dict]:
        return self.payload["rows"]


class StaticPerfResponse(ApiResponse):
    """The statically *predicted* perf matrix (``/perf/static``)."""

    @property
    def params(self) -> dict:
        return self.payload["params"]

    @property
    def cells(self) -> list[dict]:
        return self.payload["cells"]

    @property
    def n_cells(self) -> int:
        return self.payload["n_cells"]


class KernelSubmitResponse(ApiResponse):
    """``POST /kernel/submit``: the submitted kernel's personal row."""

    @property
    def kernel(self) -> str:
        return self.payload["kernel"]

    @property
    def signature(self) -> str:
        return self.payload["signature"]

    @property
    def fingerprint(self) -> str:
        return self.payload["fingerprint"]

    @property
    def lint(self) -> dict:
        return self.payload["lint"]

    @property
    def vendors(self) -> list[dict]:
        return self.payload["vendors"]


class PerfLintResponse(LintReportResponse):
    """``/lint/perf``: a lint report plus the agreement rollup."""

    @property
    def agreement(self) -> dict:
        return self.payload["agreement"]


class TraceLintResponse(LintReportResponse):
    """``/lint/traces``: tracesan's report plus the agreement rollup."""

    @property
    def agreement(self) -> dict:
        return self.payload["agreement"]


# -- the client protocol ------------------------------------------------------


@runtime_checkable
class MatrixClient(Protocol):
    """The one client interface, implemented by both transports."""

    def health(self) -> HealthResponse: ...

    def cell(self, vendor: str, model: str,
             language: str) -> CellResponse: ...

    def table(self, fmt: str = "text") -> TableResponse: ...

    def advise(self, vendor: str | None = None, model: str | None = None,
               language: str = "c++") -> AdviseResponse: ...

    def lint_report(self) -> LintReportResponse: ...

    def metrics(self) -> MetricsResponse: ...

    def perf_matrix(self) -> PerfMatrixResponse: ...

    def perf_cell(self, vendor: str, model: str,
                  language: str) -> PerfCellResponse: ...

    def perf_portability(self) -> PortabilityResponse: ...

    def perf_static(self) -> StaticPerfResponse: ...

    def lint_perf(self) -> PerfLintResponse: ...

    def lint_traces(self) -> TraceLintResponse: ...

    def submit_kernel(self, source: str, name: str | None = None,
                      signature: str | None = None,
                      ) -> KernelSubmitResponse: ...

    def admin_stores(self) -> AdminStoresResponse: ...

    def clear_stores(self) -> StoresClearResponse: ...
