"""Dependency-aware concurrent scheduler for the matrix build.

The sequential :func:`repro.core.matrix.build_matrix` is one long loop:
51 cells x their routes x their probes, in registry order.  This module
decomposes that loop into an explicit job DAG and runs it on a thread
pool::

    per route:  translate ──> compile ──> probe[0..P-1] ──> classify
    per cell:   classify[routes...] ──> cell (assemble + persist)

* **translate** — constructs the route's runtime chain once (wiring the
  toolchain and any source-to-source translator) and records whether the
  chain is constructible and which translator it uses.  Purely a gate +
  metadata producer: its outcome never feeds the cell result, because
  probe jobs construct their own fresh runtimes (exactly like the
  sequential build) and must record the identical per-probe errors.
* **compile** — the compile-readiness gate: checks the chain's bound
  toolchain accepts the route's (model, language) and can emit the
  device ISA.  Again advisory; the authoritative compile happens inside
  each probe, deduplicated across workers by the content-keyed,
  single-flight compile cache.
* **probe** — one probe of the route's suite via
  :func:`repro.core.matrix.run-single-probe` semantics (same primitive
  the sequential build uses).  Probes are pairwise independent — each
  constructs a fresh runtime — which is what makes any interleaving of
  them equivalent to the sequential order.
* **classify** — reassembles the outcomes *in suite order* and runs the
  §3 classifier.
* **cell** — assembles the :class:`CellResult` with routes *in registry
  order* and persists it to the result store.

Because every probe job is independent and all ordering-sensitive steps
(classify, cell, final matrix dict) reassemble in the fixed registry
order, the produced matrix is **bit-identical to the sequential build at
every worker count** — the invariant the test suite checks at ``--jobs
{1, 4, 16}``.

Worker isolation: devices are *thread-local* (one lazily-built device
per vendor per worker).  Worker threads therefore never share mutable
simulator state; cross-thread state is limited to the compile cache
(single-flight, lock-protected) and the process-wide counters (lock-
protected as of this change).

Jobs run with a per-job timeout, bounded retry with exponential
backoff, and cooperative cancellation.  Timeouts are enforced
post-hoc — a pure-Python job cannot be preempted mid-flight — so a job
that exceeds its budget is treated as failed and retried; the
``fault_hook`` lets tests inject timeouts deterministically.

Execution backends
------------------

The engine runs its jobs on one of two backends, selected by
``execution="thread" | "process"``:

* **thread** (the default, and the fault-injection test bed) — the job
  DAG above on a pool of worker threads.  Pure-Python probe work is
  GIL-bound, so ``jobs=N`` buys latency overlap but no CPU scaling.
* **process** — jobs run in worker *processes* on a
  ``ProcessPoolExecutor``, which actually uses N cores.  Because job
  closures do not pickle, the process backend shards at the natural
  picklable granularity: **one task per cell** (a cell's probes and
  routes are evaluated inside one worker, exactly like the sequential
  per-cell loop).  Workers publish finished cells into the
  content-addressed store when one is configured — the store is the
  mailbox; its writes are atomic and cross-process safe — and *also*
  return the serialized cell payload, so storeless builds work the same
  way.  The coordinator reassembles in canonical ``all_cells()`` /
  registry order, so the **bit-identical at every worker count**
  invariant holds verbatim on both backends.

Process-mode fault tolerance: a worker process that dies mid-job
(detected as a broken pool) is counted as a ``worker_crashes``, the
pool is rebuilt (``worker_restarts``), and every job that was in flight
is retried under the same bounded-retry budget — a crash is a
structured retry, never a hang.  The ``fault_hook`` seam carries over:
a picklable hook is shipped to the workers and called with a
(:class:`JobInfo`, attempt) pair *inside* the worker (so it can
simulate real crashes with ``os._exit``); an unpicklable hook runs
coordinator-side with the real :class:`Job`, and raising
:class:`WorkerCrash` from it simulates a death without killing a pool.
"""

from __future__ import annotations

import enum
import itertools
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.classifier import DEFAULT_THRESHOLDS, Thresholds
from repro.core.matrix import (
    CompatibilityMatrix,
    assemble_cell,
    assemble_route_result,
    probes_for_route,
)
from repro.core.probes import Probe, run_single_probe
from repro.core.routes import Route, routes_for
from repro.enums import Language, Model, Vendor, all_cells
from repro.errors import ReproError
from repro.gpu.device import Device
from repro.service.metrics import MetricsRegistry
from repro.service.store import ResultStore

Cell = tuple[Vendor, Model, Language]

#: The execution backends the engine can run jobs on.
EXECUTION_THREAD = "thread"
EXECUTION_PROCESS = "process"
EXECUTION_MODES = (EXECUTION_THREAD, EXECUTION_PROCESS)


def resolve_jobs(jobs: int | None) -> int:
    """``None`` means "use every core" (the CLI's ``--jobs`` default)."""
    if jobs is None:
        return os.cpu_count() or 1
    return jobs


def resolve_execution(execution: str) -> str:
    """Validate the backend knob (raises ``ValueError`` on typos)."""
    if execution not in EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {EXECUTION_MODES}, got {execution!r}")
    return execution


class JobKind(enum.Enum):
    """Job kinds of the *matrix* build DAG.

    The perf-portability build defines its own kind enum
    (:class:`repro.perfport.scheduler.PerfJobKind`); the engine only
    requires ``kind.value`` to be a stable string.
    """

    TRANSLATE = "translate"
    COMPILE = "compile"
    PROBE = "probe"
    CLASSIFY = "classify"
    CELL = "cell"


class JobTimeout(Exception):
    """A job exceeded its time budget (or a fault hook simulated that)."""


class BuildCancelled(Exception):
    """The build was cancelled before all cells completed."""


class SchedulerError(Exception):
    """A job failed permanently (retries exhausted)."""


class WorkerCrash(Exception):
    """A worker process died mid-job (or a fault hook simulated that).

    Raised internally per failed attempt and converted to a structured
    retry; it only escapes (wrapped in :class:`SchedulerError`) when the
    retry budget is exhausted.
    """


@dataclass(frozen=True)
class JobInfo:
    """Picklable surrogate of a :class:`Job`, shipped to worker processes.

    Process-mode fault hooks receive this instead of the full ``Job``
    (whose ``fn`` closure does not pickle).  ``label`` matches
    :attr:`Job.label` so one hook can target the same jobs on either
    backend.
    """

    label: str
    kind: str
    cell: tuple[str, str, str]


@dataclass
class Job:
    """One schedulable unit of a job-DAG build."""

    job_id: int
    kind: enum.Enum
    cell: Cell
    route: Route | None = None
    probe: Probe | None = None
    deps: tuple[int, ...] = ()
    fn: Callable[["_WorkerState"], object] | None = field(
        default=None, repr=False)
    attempts: int = 0

    @property
    def label(self) -> str:
        vendor, model, language = self.cell
        parts = [self.kind.value, vendor.value, model.value, language.value]
        if self.route is not None:
            parts.append(self.route.route_id)
        if self.probe is not None:
            parts.append(self.probe.method)
        return ":".join(parts)


class _WorkerState(threading.local):
    """Thread-local devices: one per vendor, built on first use."""

    def __init__(self, factory: Callable[[Vendor], Device]):
        self._factory = factory
        self._devices: dict[Vendor, Device] = {}

    def device(self, vendor: Vendor) -> Device:
        dev = self._devices.get(vendor)
        if dev is None:
            dev = self._devices[vendor] = self._factory(vendor)
        return dev


def _default_device_factory(vendor: Vendor) -> Device:
    from repro.gpu.specs import default_spec

    return Device(default_spec(vendor))


@dataclass
class BuildReport:
    """Outcome of one scheduled build."""

    matrix: CompatibilityMatrix
    metrics: MetricsRegistry
    jobs: int
    elapsed_s: float
    cells_from_store: int
    cells_evaluated: int
    store: ResultStore | None = None

    def summary_line(self) -> str:
        reuse = (f"{self.cells_from_store} from store, "
                 if self.store is not None else "")
        return (f"{self.matrix.n_cells} cells ({reuse}"
                f"{self.cells_evaluated} evaluated) with {self.jobs} "
                f"worker(s) in {self.elapsed_s:.2f}s")


class JobEngine:
    """Generic dependency-aware job DAG executor on a thread pool.

    Owns everything that is not matrix-specific: the ready queue, the
    dependency bookkeeping, per-job timeout/retry/backoff, cooperative
    cancellation, the fault-injection seam, thread-local per-vendor
    devices, and the completion/latency/queue-depth metrics.  Subclasses
    (:class:`MatrixScheduler` here, ``PerfScheduler`` in
    ``repro.perfport``) contribute only DAG construction and job bodies.
    """

    worker_name = "engine-worker"

    def __init__(
        self,
        jobs: int | None = 1,
        *,
        execution: str = EXECUTION_THREAD,
        metrics: MetricsRegistry | None = None,
        device_factory: Callable[[Vendor], Device] | None = None,
        timeout_s: float = 60.0,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        fault_hook: Callable[[Job, int], None] | None = None,
    ):
        jobs = resolve_jobs(jobs)
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.execution = resolve_execution(execution)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.fault_hook = fault_hook
        self._device_factory = device_factory or _default_device_factory
        self._worker_state = _WorkerState(self._device_factory)

        self._ids = itertools.count()
        self._jobs: dict[int, Job] = {}
        self._results: dict[int, object] = {}
        self._waiting: dict[int, int] = {}  # job id -> unresolved dep count
        self._dependents: dict[int, list[int]] = {}
        self._ready: deque[int] = deque()
        self._cond = threading.Condition()
        self._cancelled = threading.Event()
        self._error: BaseException | None = None
        self._outstanding = 0

    # -- DAG construction --------------------------------------------------

    def _add(self, job: Job) -> int:
        self._jobs[job.job_id] = job
        unresolved = sum(1 for d in job.deps if d not in self._results)
        self._dependents.setdefault(job.job_id, [])
        for d in job.deps:
            self._dependents.setdefault(d, []).append(job.job_id)
        if unresolved:
            self._waiting[job.job_id] = unresolved
        else:
            self._ready.append(job.job_id)
        self._outstanding += 1
        return job.job_id

    def _next_id(self) -> int:
        return next(self._ids)

    # -- execution engine --------------------------------------------------

    def cancel(self) -> None:
        """Cooperatively cancel the build: queued jobs stop dispatching."""
        with self._cond:
            self._cancelled.set()
            self._cond.notify_all()

    def _execute(self, job: Job) -> object:
        """Run one job with timeout accounting, bounded retries, backoff."""
        last: BaseException | None = None
        for attempt in range(self.max_retries + 1):
            if self._cancelled.is_set():
                raise BuildCancelled(f"cancelled before {job.label}")
            job.attempts = attempt + 1
            start = time.monotonic()
            try:
                if self.fault_hook is not None:
                    self.fault_hook(job, attempt)
                result = job.fn(self._worker_state)
                elapsed = time.monotonic() - start
                if elapsed > self.timeout_s:
                    raise JobTimeout(
                        f"{job.label} took {elapsed:.3f}s "
                        f"(budget {self.timeout_s}s)")
            except JobTimeout as exc:
                self.metrics.counter("jobs_timeout").inc()
                last = exc
            except BuildCancelled:
                raise
            except Exception as exc:  # unexpected: simulator bug
                last = exc
            else:
                self.metrics.histogram(
                    f"job_latency_{job.kind.value}").observe(
                        time.monotonic() - start)
                return result
            if attempt < self.max_retries:
                self.metrics.counter("jobs_retried").inc()
                if self.backoff_s > 0:
                    time.sleep(self.backoff_s * (2 ** attempt))
        raise SchedulerError(
            f"job {job.label} failed after {job.attempts} attempt(s): "
            f"{type(last).__name__}: {last}") from last

    def _worker(self) -> None:
        while True:
            with self._cond:
                while (not self._ready and self._outstanding > 0
                       and self._error is None
                       and not self._cancelled.is_set()):
                    self._cond.wait()
                if (self._error is not None or self._outstanding == 0
                        or self._cancelled.is_set()):
                    self._cond.notify_all()
                    return
                self.metrics.histogram(
                    "queue_depth",
                    buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
                ).observe(len(self._ready))
                job_id = self._ready.popleft()
            job = self._jobs[job_id]
            try:
                result = self._execute(job)
            except BaseException as exc:
                with self._cond:
                    if self._error is None:
                        self._error = exc
                    self._cond.notify_all()
                return
            with self._cond:
                self._results[job_id] = result
                self.metrics.counter(
                    f"jobs_completed_{job.kind.value}").inc()
                self._outstanding -= 1
                for dep_id in self._dependents.get(job_id, ()):
                    self._waiting[dep_id] -= 1
                    if self._waiting[dep_id] == 0:
                        del self._waiting[dep_id]
                        self._ready.append(dep_id)
                self._cond.notify_all()

    def run_all(self) -> None:
        """Drain the DAG: run every added job, or raise on error/cancel."""
        if not self._outstanding:
            return
        workers = [
            threading.Thread(target=self._worker,
                             name=f"{self.worker_name}-{i}", daemon=True)
            for i in range(self.jobs)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        if self._error is not None:
            raise self._error
        if self._cancelled.is_set():
            raise BuildCancelled(
                f"build cancelled with {self._outstanding} job(s) "
                f"outstanding")

    # -- process backend ---------------------------------------------------

    def _split_fault_hook(self):
        """A picklable hook ships to the workers; any other runs here."""
        if self.fault_hook is None:
            return None, None
        try:
            pickle.dumps(self.fault_hook)
        except Exception:
            return None, self.fault_hook  # coordinator-side
        return self.fault_hook, None  # worker-side

    def _make_pool(self):
        import concurrent.futures
        import multiprocessing

        # fork (where available) is both faster to start and lets
        # workers inherit the parent's warm compile caches; spawn is the
        # portable fallback (worker fns are module-level, so they
        # re-import cleanly).
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=ctx)

    def run_tasks_in_processes(
        self,
        jobs_: list[Job],
        runner: Callable,
        args_list: list[tuple],
    ) -> list[object]:
        """Run independent picklable tasks on a worker-process pool.

        ``runner(*args_list[i])`` executes in a worker for each job in
        ``jobs_``; results come back in input order.  Applies the same
        bounded retry / backoff / post-hoc timeout policy as the thread
        backend, plus crash recovery: a broken pool counts one
        ``worker_crashes``, is rebuilt (``worker_restarts``), and every
        in-flight task is retried against the fresh pool.
        """
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        if not jobs_:
            return []
        wire_hook, local_hook = self._split_fault_hook()
        results: list[object] = [None] * len(jobs_)
        attempts = [0] * len(jobs_)
        pending: deque[int] = deque(range(len(jobs_)))
        futures: dict[object, int] = {}
        worker_pids: set[int] = set()
        pool = self._make_pool()

        def fail(i: int, exc: BaseException, *,
                 count_crash: bool = True) -> None:
            job = jobs_[i]
            if isinstance(exc, WorkerCrash) and count_crash:
                self.metrics.counter("worker_crashes").inc()
            if isinstance(exc, JobTimeout):
                self.metrics.counter("jobs_timeout").inc()
            if attempts[i] <= self.max_retries:
                self.metrics.counter("jobs_retried").inc()
                if self.backoff_s > 0:
                    time.sleep(self.backoff_s * (2 ** (attempts[i] - 1)))
                pending.append(i)
                return
            raise SchedulerError(
                f"job {job.label} failed after {attempts[i]} attempt(s): "
                f"{type(exc).__name__}: {exc}") from exc

        try:
            while pending or futures:
                if self._cancelled.is_set():
                    raise BuildCancelled(
                        f"build cancelled with {len(pending) + len(futures)} "
                        f"process task(s) outstanding")
                while pending:
                    i = pending.popleft()
                    job = jobs_[i]
                    attempts[i] += 1
                    job.attempts = attempts[i]
                    if local_hook is not None:
                        try:
                            local_hook(job, attempts[i] - 1)
                        except BuildCancelled:
                            raise
                        except Exception as exc:
                            fail(i, exc)
                            continue
                    info = JobInfo(label=job.label, kind=job.kind.value,
                                   cell=tuple(p.value for p in job.cell))
                    fut = pool.submit(_process_entry, info, runner,
                                      args_list[i], attempts[i] - 1,
                                      wire_hook)
                    futures[fut] = i
                if not futures:
                    continue
                done, _ = concurrent.futures.wait(
                    futures, return_when=concurrent.futures.FIRST_COMPLETED)
                pool_broken = False
                for fut in done:
                    i = futures.pop(fut)
                    job = jobs_[i]
                    try:
                        payload, elapsed, pid = fut.result()
                    except BrokenProcessPool as exc:
                        # One dead worker fails every in-flight future;
                        # count the crash once (below) and retry each
                        # casualty without inflating the crash counter.
                        pool_broken = True
                        fail(i, WorkerCrash(
                            f"worker process died while {job.label} was "
                            f"in flight: {exc}"), count_crash=False)
                        continue
                    except BuildCancelled:
                        raise
                    except Exception as exc:
                        fail(i, exc)
                        continue
                    if elapsed > self.timeout_s:
                        fail(i, JobTimeout(
                            f"{job.label} took {elapsed:.3f}s "
                            f"(budget {self.timeout_s}s)"))
                        continue
                    worker_pids.add(pid)
                    results[i] = payload
                    self.metrics.counter(
                        f"jobs_completed_{job.kind.value}").inc()
                    self.metrics.histogram(
                        f"job_latency_{job.kind.value}").observe(elapsed)
                if pool_broken:
                    self.metrics.counter("worker_crashes").inc()
                    self.metrics.counter("worker_restarts").inc()
                    # Drain the corpses: every remaining future is dead.
                    for fut, i in list(futures.items()):
                        fail(i, WorkerCrash(
                            f"worker pool broke while {jobs_[i].label} "
                            f"was in flight"), count_crash=False)
                    futures.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = self._make_pool()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        self.metrics.gauge("process_workers_used").set(len(worker_pids))
        return results


# -- process-mode worker bodies (module-level: must be importable) ------------


def _process_entry(info: JobInfo, runner: Callable, args: tuple,
                   attempt: int, fault_hook) -> tuple[object, float, int]:
    """Run one task inside a worker process; returns (result, s, pid)."""
    start = time.monotonic()
    if fault_hook is not None:
        fault_hook(info, attempt)
    result = runner(*args)
    return result, time.monotonic() - start, os.getpid()


#: Per-worker-process caches: one device per vendor, one store handle
#: per root.  Workers are long-lived, so these amortize across tasks.
_WORKER_DEVICES: dict[Vendor, Device] = {}
_WORKER_STORES: dict[tuple[str, Thresholds], "ResultStore"] = {}


def _worker_device(vendor: Vendor,
                   device_factory: Callable[[Vendor], Device] | None
                   ) -> Device:
    dev = _WORKER_DEVICES.get(vendor)
    if dev is None:
        factory = device_factory or _default_device_factory
        dev = _WORKER_DEVICES[vendor] = factory(vendor)
    return dev


def _worker_result_store(root: str, thresholds: Thresholds) -> ResultStore:
    key = (root, thresholds)
    store = _WORKER_STORES.get(key)
    if store is None:
        store = _WORKER_STORES[key] = ResultStore(root,
                                                  thresholds=thresholds)
    return store


def _eval_matrix_cell_task(
    cell_values: tuple[str, str, str],
    thresholds: Thresholds,
    probe_filter,
    store_root: str | None,
    device_factory,
) -> tuple[dict, dict]:
    """Worker body: evaluate one full cell, publish it, return its dict.

    Mirrors the sequential per-cell loop of
    :func:`repro.core.matrix.build_matrix` exactly — routes in registry
    order, probes in suite order — so the payload reconstructs
    bit-identically coordinator-side via ``cell_from_dict``.
    """
    from repro.service.store import cell_to_dict

    vendor = Vendor(cell_values[0])
    model = Model(cell_values[1])
    language = Language(cell_values[2])
    device = _worker_device(vendor, device_factory)
    probes_run = 0
    results = []
    for route in routes_for(vendor, model, language):
        outcomes = []
        for probe in probes_for_route(route, probe_filter):
            outcomes.append(run_single_probe(route, device, probe))
            probes_run += 1
        results.append(assemble_route_result(route, outcomes, thresholds))
    cell_result = assemble_cell(vendor, model, language, results)
    publishes = 0
    if store_root is not None and probe_filter is None:
        _worker_result_store(store_root, thresholds).save(cell_result)
        publishes = 1
    return cell_to_dict(cell_result), {
        "probes_executed": probes_run,
        "store_publishes": publishes,
    }


class MatrixScheduler(JobEngine):
    """Builds the compatibility matrix as a job DAG on a thread pool."""

    worker_name = "matrix-worker"

    def __init__(
        self,
        jobs: int | None = 1,
        *,
        execution: str = EXECUTION_THREAD,
        store: ResultStore | None = None,
        thresholds: Thresholds = DEFAULT_THRESHOLDS,
        probe_filter: Callable[[Probe], bool] | None = None,
        metrics: MetricsRegistry | None = None,
        device_factory: Callable[[Vendor], Device] | None = None,
        timeout_s: float = 60.0,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        fault_hook: Callable[[Job, int], None] | None = None,
    ):
        super().__init__(
            jobs,
            execution=execution,
            metrics=metrics,
            device_factory=device_factory,
            timeout_s=timeout_s,
            max_retries=max_retries,
            backoff_s=backoff_s,
            fault_hook=fault_hook,
        )
        self.store = store
        self.thresholds = thresholds
        self.probe_filter = probe_filter

    # -- DAG construction --------------------------------------------------

    def _build_route_jobs(self, cell: Cell, route: Route) -> int:
        """Create translate -> compile -> probes -> classify; returns the
        classify job id (the route's terminal)."""
        translate = Job(
            self._next_id(), JobKind.TRANSLATE, cell, route=route,
            fn=lambda ws, r=route: self._run_translate(ws, r))
        self._add(translate)
        compile_ = Job(
            self._next_id(), JobKind.COMPILE, cell, route=route,
            deps=(translate.job_id,),
            fn=lambda ws, r=route: self._run_compile_gate(ws, r))
        self._add(compile_)
        probe_ids: list[int] = []
        for probe in probes_for_route(route, self.probe_filter):
            job = Job(
                self._next_id(), JobKind.PROBE, cell, route=route,
                probe=probe, deps=(compile_.job_id,),
                fn=lambda ws, r=route, p=probe: self._run_probe(ws, r, p))
            probe_ids.append(self._add(job))
        classify = Job(
            self._next_id(), JobKind.CLASSIFY, cell, route=route,
            deps=tuple(probe_ids),
            fn=lambda ws, r=route, ids=tuple(probe_ids):
                self._run_classify(r, ids))
        return self._add(classify)

    def _build_cell_jobs(self, cell: Cell) -> int:
        vendor, model, language = cell
        classify_ids = [
            self._build_route_jobs(cell, route)
            for route in routes_for(vendor, model, language)
        ]
        job = Job(
            self._next_id(), JobKind.CELL, cell, deps=tuple(classify_ids),
            fn=lambda ws, c=cell, ids=tuple(classify_ids):
                self._run_cell(c, ids))
        return self._add(job)

    # -- job bodies --------------------------------------------------------

    def _run_translate(self, ws: _WorkerState, route: Route) -> dict:
        device = ws.device(route.vendor)
        try:
            runtime = route.chain(device)
        except (ReproError, AttributeError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        translator = getattr(runtime, "translator", None)
        return {
            "ok": True,
            "translator": type(translator).__name__ if translator else None,
        }

    def _run_compile_gate(self, ws: _WorkerState, route: Route) -> dict:
        """Advisory compile-readiness check (authoritative compiles run
        inside probes, deduplicated by the single-flight cache)."""
        device = ws.device(route.vendor)
        try:
            runtime = route.chain(device)
        except (ReproError, AttributeError) as exc:
            return {"ready": False, "error": f"{type(exc).__name__}: {exc}"}
        toolchain = getattr(runtime, "toolchain", None)
        if toolchain is None:
            return {"ready": True, "toolchain": None}
        model = getattr(runtime, "MODEL", route.model)
        language = getattr(runtime, "language", route.language)
        accepts = toolchain.accepts(model, language)
        emits = device.isa in toolchain.targets_for(model, language)
        # A translated route is compiled in the *target* model, so a
        # front-model rejection here is expected, not a failure.
        translated = getattr(runtime, "translator", None) is not None
        return {
            "ready": bool((accepts and emits) or translated),
            "toolchain": toolchain.name,
        }

    def _run_probe(self, ws: _WorkerState, route: Route, probe: Probe):
        device = ws.device(route.vendor)
        self.metrics.counter("probes_executed").inc()
        return run_single_probe(route, device, probe)

    def _run_classify(self, route: Route, probe_ids: tuple[int, ...]):
        outcomes = [self._results[i] for i in probe_ids]
        return assemble_route_result(route, outcomes, self.thresholds)

    def _run_cell(self, cell: Cell, classify_ids: tuple[int, ...]):
        vendor, model, language = cell
        results = [self._results[i] for i in classify_ids]
        cell_result = assemble_cell(vendor, model, language, results)
        if self.store is not None and self.probe_filter is None:
            self.store.save(cell_result)
            self.metrics.counter("store_writes").inc()
        return cell_result

    # -- the process backend: one task per cell ----------------------------

    def _build_cells_in_processes(self, missing: list[Cell]) -> dict[Cell,
                                                                     object]:
        """Evaluate ``missing`` cells on the worker-process fleet."""
        from repro.service.store import cell_from_dict

        for name, value in (("probe_filter", self.probe_filter),
                            ("device_factory",
                             None if self._device_factory
                             is _default_device_factory
                             else self._device_factory)):
            if value is not None:
                try:
                    pickle.dumps(value)
                except Exception as exc:
                    raise ValueError(
                        f"{name} must be picklable for process execution "
                        f"(got {value!r}): {exc}") from exc
        store_root = (str(self.store.root)
                      if self.store is not None else None)
        factory = (None if self._device_factory is _default_device_factory
                   else self._device_factory)
        jobs_ = [Job(self._next_id(), JobKind.CELL, cell)
                 for cell in missing]
        args_list = [
            (tuple(p.value for p in cell), self.thresholds,
             self.probe_filter, store_root, factory)
            for cell in missing
        ]
        payloads = self.run_tasks_in_processes(
            jobs_, _eval_matrix_cell_task, args_list)
        evaluated: dict[Cell, object] = {}
        for cell, (payload, stats) in zip(missing, payloads):
            self.metrics.counter("probes_executed").inc(
                stats["probes_executed"])
            if stats["store_publishes"]:
                self.metrics.counter("store_writes").inc(
                    stats["store_publishes"])
                self.store.stats._inc("writes")
            evaluated[cell] = cell_from_dict(payload, self.thresholds)
        return evaluated

    # -- public API --------------------------------------------------------

    def build(self) -> BuildReport:
        """Evaluate (or load) all 51 cells and assemble the matrix."""
        start = time.monotonic()
        self.metrics.gauge("workers").set(self.jobs)
        cell_jobs: dict[Cell, int] = {}
        missing: list[Cell] = []
        stored: dict[Cell, object] = {}
        use_store = self.store is not None and self.probe_filter is None
        use_processes = self.execution == EXECUTION_PROCESS
        if self.store is not None and self.probe_filter is not None:
            self.metrics.counter("store_bypassed").inc()
        for cell in all_cells():
            if use_store:
                cached = self.store.load(cell)
                if cached is not None:
                    stored[cell] = cached
                    self.metrics.counter("store_hits").inc()
                    continue
                self.metrics.counter("store_misses").inc()
            if use_processes:
                missing.append(cell)
            else:
                cell_jobs[cell] = self._build_cell_jobs(cell)

        if use_processes:
            evaluated = self._build_cells_in_processes(missing)
        else:
            self.run_all()
            evaluated = {cell: self._results[job_id]
                         for cell, job_id in cell_jobs.items()}

        cells = {}
        for cell in all_cells():
            if cell in stored:
                cells[cell] = stored[cell]
            else:
                cells[cell] = evaluated[cell]
        matrix = CompatibilityMatrix(cells=cells, thresholds=self.thresholds)
        elapsed = time.monotonic() - start
        self.metrics.counter("builds").inc()
        return BuildReport(
            matrix=matrix,
            metrics=self.metrics,
            jobs=self.jobs,
            elapsed_s=elapsed,
            cells_from_store=len(stored),
            cells_evaluated=len(evaluated),
            store=self.store,
        )


def build_matrix_concurrent(
    jobs: int | None = 1,
    *,
    execution: str = EXECUTION_THREAD,
    store: ResultStore | str | None = None,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    probe_filter: Callable[[Probe], bool] | None = None,
    metrics: MetricsRegistry | None = None,
    device_factory: Callable[[Vendor], Device] | None = None,
    timeout_s: float = 60.0,
    max_retries: int = 2,
    backoff_s: float = 0.05,
    fault_hook: Callable[[Job, int], None] | None = None,
) -> BuildReport:
    """One-call concurrent matrix build (see :class:`MatrixScheduler`).

    ``store`` may be a :class:`~repro.service.store.ResultStore` or a
    directory path; ``None`` disables persistence.  The result is
    bit-identical to :func:`repro.core.matrix.build_matrix` with the
    same thresholds/probe filter, at every ``jobs`` count — on either
    execution backend.
    """
    if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = ResultStore(store, thresholds=thresholds, metrics=metrics)
    scheduler = MatrixScheduler(
        jobs,
        execution=execution,
        store=store,
        thresholds=thresholds,
        probe_filter=probe_filter,
        metrics=metrics,
        device_factory=device_factory,
        timeout_s=timeout_s,
        max_retries=max_retries,
        backoff_s=backoff_s,
        fault_hook=fault_hook,
    )
    return scheduler.build()
