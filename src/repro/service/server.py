"""Queryable serving layer for the evaluated matrices.

Two transports, **one** client surface: every endpoint method is
defined once on ``_BaseClient`` in terms of an abstract ``_request``;
:class:`InProcessClient` routes requests through the same
:func:`dispatch` function the HTTP handler uses (payload parity between
transports holds *by construction*), and :class:`HttpClient` sends them
over a loopback JSON API served by :func:`make_server`.  Both implement
the :class:`repro.service.api.MatrixClient` protocol and return the
typed responses from :mod:`repro.service.api`.

Endpoints (all GET, all JSON, all stamped with ``schema_version``;
errors use the ``{"error": {"code", "message"}}`` envelope):

====================================  =======================================
path                                  payload
====================================  =======================================
``/healthz``                          liveness + cell count
``/cell/<vendor>/<model>/<lang>``     one compat cell: ratings, routes,
                                      probe outcomes
``/table?format=F``                   rendered Figure 1 (text, markdown,
                                      html, tex, yaml)
``/advise?vendor=V&language=L``       route recommendations (also
                                      ``model=M&language=L``; neither:
                                      portable models per language)
``/lint/routes``                      static route-evidence cross-check
``/metrics``                          scheduler/store/compile-cache/
                                      interpreter/stream counters
``/perf/matrix``                      per-cell efficiencies over the full
                                      perf-portability matrix
``/perf/cell/<vendor>/<model>/<l>``   one perf cell: per-route GB/s,
                                      efficiencies, best route
``/perf/portability``                 cascades + Pennycook ⫫ per
                                      (model, language)
``/perf/static``                      perfstat's *predicted* perf matrix
                                      (zero kernel executions)
``/lint/perf``                        static-vs-measured perf cross-check
                                      + cost-model notes + agreement rollup
``/lint/traces``                      tracesan static trace-validation
                                      sweep + agreement rollup (zero
                                      kernel executions)
``/admin/stores``                     operational store view: entry
                                      counts, hit/miss/corrupt counters,
                                      environment fingerprints
``/admin/stores/clear`` (POST)        delete every persisted cell (403
                                      ``read_only`` when the server was
                                      started with ``serve --read-only``)
====================================  =======================================

Schema v4: ``/healthz`` and ``/metrics`` additionally carry a typed
``execution`` block (:class:`repro.service.api.ExecutionInfo`) naming
the scheduler backend (``thread`` or ``process``), the worker count,
and the fleet counters (store hits, probes run, worker crashes and
pool restarts).

Both matrices build lazily on first use through the concurrent
schedulers, against an optional persistent store — a warm store serves
all compat cells with zero probe executions and all perf cells with
zero stream-kernel executions.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.enums import Language, Model, SupportCategory, Vendor, all_cells
from repro.service.api import (
    AdminStoresResponse,
    AdviseResponse,
    BadRequestError,
    CellResponse,
    ExecutionInfo,
    HealthResponse,
    KernelRejectedError,
    KernelSubmitResponse,
    LintReportResponse,
    MetricsResponse,
    NotFoundError,
    PayloadTooLargeError,
    PerfCellResponse,
    PerfLintResponse,
    PerfMatrixResponse,
    PortabilityResponse,
    ReadOnlyError,
    RemoteServerError,
    StaticPerfResponse,
    StoresClearResponse,
    TableResponse,
    TraceLintResponse,
    check_schema_version,
    error_envelope,
    error_from_payload,
    versioned,
)
from repro.service.api import ServiceError as _ServiceError
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import (
    EXECUTION_THREAD,
    BuildReport,
    build_matrix_concurrent,
    resolve_execution,
    resolve_jobs,
)
from repro.service.store import ResultStore, cell_to_dict

__all__ = [
    "HttpClient",
    "InProcessClient",
    "MatrixService",
    "dispatch",
    "make_server",
]


def __getattr__(name: str):
    # Deprecation shim: ServiceError's canonical home moved to
    # repro.service.api in the versioned-API redesign.  Deep imports of
    # the old location keep working for one release, warning once.
    if name == "ServiceError":
        import warnings

        warnings.warn(
            "repro.service.server.ServiceError moved to repro.service.api; "
            "import it from repro.service",
            DeprecationWarning, stacklevel=2)
        return _ServiceError
    raise AttributeError(
        f"module 'repro.service.server' has no attribute {name!r}")


def _parse_vendor(text: str) -> Vendor:
    for v in Vendor:
        if v.value.lower() == text.lower():
            return v
    raise NotFoundError(f"unknown vendor '{text}'")


def _parse_model(text: str) -> Model:
    for m in Model:
        if m.value.lower() == text.lower():
            return m
    raise NotFoundError(f"unknown model '{text}'")


_LANGUAGE_ALIASES = {
    "c++": Language.CPP, "cpp": Language.CPP, "cxx": Language.CPP,
    "fortran": Language.FORTRAN, "f": Language.FORTRAN,
    "python": Language.PYTHON, "py": Language.PYTHON,
}


def _parse_language(text: str) -> Language:
    try:
        return _LANGUAGE_ALIASES[text.lower()]
    except KeyError:
        raise NotFoundError(f"unknown language '{text}'") from None


class MatrixService:
    """The in-process core: owns the matrices, stores, and metrics.

    Thread-safe: both lazy builds are single-flighted behind a lock and
    every query method reads the immutable built structures.
    """

    def __init__(
        self,
        *,
        jobs: int | None = 4,
        execution: str = EXECUTION_THREAD,
        read_only: bool = False,
        store: ResultStore | str | None = None,
        metrics: MetricsRegistry | None = None,
        perf_params: "PerfParams | None" = None,
    ):
        from repro.perfport.matrix import PerfParams

        self.jobs = resolve_jobs(jobs)
        self.execution = resolve_execution(execution)
        self.read_only = read_only
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
            store = ResultStore(store, metrics=self.metrics)
        self.store = store
        self.perf_params = (perf_params if perf_params is not None
                            else PerfParams())
        self._report: BuildReport | None = None
        self._perf_report = None
        self._static_perf = None
        self._perf_lint: dict | None = None
        self._trace_lint: dict | None = None
        self._build_lock = threading.Lock()
        self._kernel_rows: dict[str, dict] = {}
        self._kernel_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def ensure_built(self) -> BuildReport:
        """Build (or load) the compat matrix once; later calls are free."""
        with self._build_lock:
            if self._report is None:
                self._report = build_matrix_concurrent(
                    self.jobs, execution=self.execution, store=self.store,
                    metrics=self.metrics)
            return self._report

    def ensure_perf_built(self):
        """Build (or load) the perf matrix once; later calls are free."""
        from repro.perfport.scheduler import PerfScheduler
        from repro.perfport.store import PerfStore

        compat = self.ensure_built().matrix
        with self._build_lock:
            if self._perf_report is None:
                perf_store = (
                    PerfStore(self.store.root, params=self.perf_params,
                              thresholds=self.store.thresholds,
                              metrics=self.metrics)
                    if self.store is not None else None)
                self._perf_report = PerfScheduler(
                    self.jobs, compat=compat, execution=self.execution,
                    params=self.perf_params, store=perf_store,
                    metrics=self.metrics,
                ).build()
            return self._perf_report

    def ensure_static_perf_built(self):
        """Predict the perf matrix statically once; later calls are free.

        Unlike the dynamic builds this needs neither the compatibility
        matrix nor a store: perfstat works from the route registry and
        the cost interpreter alone, so a cold service can serve
        ``/perf/static`` without executing a single kernel.
        """
        from repro.analysis.perfstat import build_static_perf_matrix

        with self._build_lock:
            if self._static_perf is None:
                self._static_perf = build_static_perf_matrix(
                    self.perf_params)
            return self._static_perf

    @property
    def matrix(self):
        return self.ensure_built().matrix

    @property
    def perf(self):
        return self.ensure_perf_built().matrix

    # -- compat queries ----------------------------------------------------

    def execution_info(self) -> ExecutionInfo:
        """The typed fleet block stamped onto ``/healthz`` and ``/metrics``."""
        def count(name: str) -> int:
            return self.metrics.counter(name).get()

        return ExecutionInfo(
            backend=self.execution,
            workers=self.jobs,
            store_hits=count("store_hits") + count("perf_store_hits"),
            probes_run=count("probes_executed"),
            worker_crashes=count("worker_crashes"),
            worker_restarts=count("worker_restarts"),
        )

    def health(self) -> dict:
        built = self._report is not None
        return {
            "status": "ok",
            "built": built,
            "cells": self._report.matrix.n_cells if built else 0,
            "read_only": self.read_only,
            "execution": self.execution_info().as_dict(),
        }

    def cell(self, vendor: str, model: str, language: str) -> dict:
        v = _parse_vendor(vendor)
        m = _parse_model(model)
        l = _parse_language(language)
        try:
            result = self.matrix.cell(v, m, l)
        except KeyError:
            raise NotFoundError(
                f"no cell {v.value}/{m.value}/{l.value} in the matrix "
                f"(not a Figure 1 combination)") from None
        return cell_to_dict(result)

    def table(self, fmt: str = "text") -> dict:
        from repro.core.render import RENDERERS, matrix_lookup

        if fmt not in RENDERERS:
            raise BadRequestError(
                f"unknown format '{fmt}' (available: "
                f"{', '.join(sorted(RENDERERS))})")
        lookup = matrix_lookup(self.matrix)
        renderer = RENDERERS[fmt]
        title = "Figure 1 (derived empirically on the simulated system)"
        if fmt in ("text", "markdown", "html", "tex"):
            rendered = renderer(lookup, title=title)  # type: ignore[call-arg]
        else:
            rendered = renderer(lookup)
        return {"format": fmt, "table": rendered}

    def advise(self, vendor: str | None = None, model: str | None = None,
               language: str = "c++") -> dict:
        from repro.core.advisor import Advisor

        lang = _parse_language(language)
        advisor = Advisor(self.matrix, minimum=SupportCategory.LIMITED)
        if model is not None:
            m = _parse_model(model)
            recs = advisor.platforms_for_model(m, lang)
            scope = f"platforms for {m.value} / {lang.value}"
        elif vendor is not None:
            v = _parse_vendor(vendor)
            recs = advisor.models_for_platform(v, lang)
            scope = f"models usable on {v.value} from {lang.value}"
        else:
            models = advisor.portable_models(lang, SupportCategory.LIMITED)
            return {
                "scope": f"portable models from {lang.value}",
                "recommendations": [m.value for m in models],
            }
        return {"scope": scope, "recommendations": [str(r) for r in recs]}

    def lint_report(self) -> dict:
        from repro.analysis.routes_evidence import cross_check

        report = cross_check()
        return json.loads(report.to_json())

    def snapshot_metrics(self) -> dict:
        from repro.workloads.babelstream import stream_totals

        snap = self.metrics.snapshot()
        if self.store is not None:
            snap["store"] = self.store.stats.as_dict()
            if self._perf_report is not None and self._perf_report.store:
                snap["perf_store"] = self._perf_report.store.stats.as_dict()
        snap["stream"] = stream_totals()
        snap["execution"] = self.execution_info().as_dict()
        snap["service"] = {
            "jobs": self.jobs,
            "execution": self.execution,
            "read_only": self.read_only,
            "built": self._report is not None,
            "perf_built": self._perf_report is not None,
            "static_perf_built": self._static_perf is not None,
            "cells_from_store": (
                self._report.cells_from_store if self._report else 0),
            "cells_evaluated": (
                self._report.cells_evaluated if self._report else 0),
        }
        return snap

    # -- operational endpoints (/admin/*) ----------------------------------

    def _perf_store(self):
        """The perf store over the shared root (built report's if any)."""
        from repro.perfport.store import PerfStore

        if self._perf_report is not None and self._perf_report.store:
            return self._perf_report.store
        if self.store is None:
            return None
        return PerfStore(self.store.root, params=self.perf_params,
                         thresholds=self.store.thresholds,
                         metrics=self.metrics)

    @staticmethod
    def _store_view(store) -> dict:
        if store is None:
            return {"configured": False, "entries": 0}
        return {
            "configured": True,
            "root": str(store.root),
            "entries": len(store.entries()),
            "fingerprint": store.fingerprint,
            "stats": store.stats.as_dict(),
        }

    def admin_stores(self) -> dict:
        """``GET /admin/stores``: the operational view of both stores."""
        return {
            "read_only": self.read_only,
            "matrix": self._store_view(self.store),
            "perf": self._store_view(self._perf_store()),
        }

    def clear_stores(self) -> dict:
        """``POST /admin/stores/clear``: drop every persisted cell.

        In-memory matrices stay built (the store is persistence, not
        cache of record); the next cold process re-evaluates.  Typed
        403 when the server was started ``serve --read-only``.
        """
        if self.read_only:
            raise ReadOnlyError(
                "store mutation rejected: server is running read-only "
                "(started with --read-only)")
        removed = {"matrix": 0, "perf": 0}
        for name, store in (("matrix", self.store),
                            ("perf", self._perf_store())):
            if store is None:
                continue
            for path in store.entries():
                path.unlink(missing_ok=True)
                removed[name] += 1
        self.metrics.counter("admin_store_clears").inc()
        return {"cleared": True, "removed": removed}

    # -- perf queries ------------------------------------------------------

    def _perf_route_payload(self, route, peak_gbs: float) -> dict:
        from repro.workloads.babelstream import STREAM_KERNELS

        params = self.perf_params
        timed = [k for k in STREAM_KERNELS if k in route.best_seconds]
        return {
            "route_id": route.route_id,
            "via": route.via,
            "translated": route.translated,
            "ok": route.ok,
            "error": route.error,
            "verified": route.verified,
            "efficiency": route.efficiency(params, peak_gbs),
            "bandwidth_gbs": {k: route.bandwidth_gbs(k, params)
                              for k in timed},
            "best_seconds": {k: route.best_seconds[k] for k in timed},
        }

    def perf_matrix(self) -> dict:
        perf = self.perf
        cells = []
        for key in all_cells():
            cell = perf.cells[key]
            best = cell.best_route(perf.params)
            cells.append({
                "vendor": cell.vendor.value,
                "model": cell.model.value,
                "language": cell.language.value,
                "supported": cell.supported,
                "efficiency": cell.efficiency(perf.params),
                "best_route": best.route_id if best else None,
            })
        return {"params": perf.params.as_dict(), "n_cells": len(cells),
                "cells": cells}

    def perf_cell(self, vendor: str, model: str, language: str) -> dict:
        v = _parse_vendor(vendor)
        m = _parse_model(model)
        l = _parse_language(language)
        perf = self.perf
        try:
            cell = perf.cells[(v, m, l)]
        except KeyError:
            raise NotFoundError(
                f"no perf cell {v.value}/{m.value}/{l.value} "
                f"(not a Figure 1 combination)") from None
        best = cell.best_route(perf.params)
        return {
            "vendor": cell.vendor.value,
            "model": cell.model.value,
            "language": cell.language.value,
            "device": cell.device,
            "peak_gbs": cell.peak_gbs,
            "params": perf.params.as_dict(),
            "supported": cell.supported,
            "efficiency": cell.efficiency(perf.params),
            "best_route": best.route_id if best else None,
            "routes": [self._perf_route_payload(r, cell.peak_gbs)
                       for r in cell.routes],
        }

    def perf_portability(self) -> dict:
        from repro.perfport.portability import portability_report

        perf = self.perf
        rows = []
        for row in portability_report(perf):
            rows.append({
                "model": row.model.value,
                "language": row.language.value,
                "metric": row.metric,
                "supported_everywhere": row.supported_everywhere,
                "cascade": [
                    {"vendor": e.vendor.value,
                     "efficiency": e.efficiency,
                     "route_id": e.route_id}
                    for e in row.cascade
                ],
            })
        return {"params": perf.params.as_dict(), "rows": rows}

    # -- static perf (perfstat) --------------------------------------------

    def _static_route_payload(self, route, peak_gbs: float,
                              params) -> dict:
        return {
            "route_id": route.route_id,
            "via": route.via,
            "translated": route.translated,
            "viable": route.viable,
            "reason": route.reason,
            "translation_hops": list(route.translation_hops),
            "efficiency": route.efficiency(params, peak_gbs),
            "predicted_seconds": dict(route.seconds),
            "bound": dict(route.bound),
            "exact": route.exact,
        }

    def perf_static(self) -> dict:
        static = self.ensure_static_perf_built()
        cells = []
        for key in all_cells():
            cell = static.cells[key]
            best = cell.best_route(static.params)
            cells.append({
                "vendor": cell.vendor.value,
                "model": cell.model.value,
                "language": cell.language.value,
                "device": cell.device,
                "peak_gbs": cell.peak_gbs,
                "supported": cell.supported,
                "efficiency": cell.efficiency(static.params),
                "best_route": best.route_id if best else None,
                "routes": [
                    self._static_route_payload(r, cell.peak_gbs,
                                               static.params)
                    for r in cell.routes
                ],
            })
        return {"params": static.params.as_dict(), "n_cells": len(cells),
                "cells": cells}

    def lint_perf_report(self) -> dict:
        """Cost-model notes + the static-vs-measured cross-check.

        Builds both matrices (dynamic measured, static predicted),
        diffs them, and publishes the agreement rollup as gauges in the
        metrics registry — ``/metrics`` then answers "how well is the
        cost model tracking the interpreter" without re-running the
        cross-check.
        """
        from repro.analysis.perfstat import (
            cross_check_perf,
            library_cost_report,
            perf_agreement_summary,
        )

        dynamic = self.perf
        static = self.ensure_static_perf_built()
        with self._build_lock:
            if self._perf_lint is None:
                report = library_cost_report()
                report.extend(cross_check_perf(static, dynamic).diagnostics)
                summary = perf_agreement_summary(report)
                for name, value in summary.items():
                    self.metrics.gauge(f"perfstat_{name}").set(value)
                payload = json.loads(report.to_json())
                payload["agreement"] = summary
                self._perf_lint = payload
            return self._perf_lint

    def lint_traces_report(self) -> dict:
        """tracesan's static trace-validation sweep over the library.

        Purely static — trace-compiles every library kernel at its
        canonical geometry and re-proves the generated program
        equivalent to the IR without executing either.  The agreement
        rollup lands in the metrics registry as ``tracesan_*`` gauges,
        so ``/metrics`` answers "is the trace tier still faithful"
        without re-running the sweep.
        """
        from repro.analysis.tracesan import (
            trace_agreement_summary,
            traces_lint_report,
            validate_library,
        )

        with self._build_lock:
            if self._trace_lint is None:
                results = validate_library()
                report = traces_lint_report(results)
                summary = trace_agreement_summary(results)
                for name, value in summary.items():
                    self.metrics.gauge(f"tracesan_{name}").set(value)
                payload = json.loads(report.to_json())
                payload["agreement"] = summary
                self._trace_lint = payload
            return self._trace_lint


    # -- kernel submission (the bring-your-own-kernel endpoint) ------------

    def count_rejection(self, code: str) -> None:
        """Roll a rejected/corrupt submission into the jit counters."""
        self.metrics.counter("jit_rejections_total").inc()
        self.metrics.counter(f"jit_rejections_total_{code}").inc()

    def submit_kernel(self, body: dict) -> dict:
        """``POST /kernel/submit``: compile, lint, rate a user kernel.

        The body is ``{"source": <python text>, "name"?: str,
        "signature"?: str}``.  The source is vetted and compiled by
        :func:`repro.jit.from_source` (size caps, static validation,
        inert exec); success returns the kernel's personal
        compatibility row.  Rows are cached by content fingerprint, so
        resubmitting the same kernel — e.g. once per transport — serves
        the identical payload object without re-running the routes.
        """
        from repro.errors import JitTypeError, ReproError
        from repro.jit import MAX_SOURCE_BYTES, build_row, from_source

        self.metrics.counter("jit_submissions_total").inc()
        if not isinstance(body, dict) or not isinstance(
                body.get("source"), str):
            self.count_rejection(BadRequestError.code)
            raise BadRequestError(
                "kernel submission requires a JSON body with a string "
                "'source' field")
        source = body["source"]
        name = body.get("name")
        signature = body.get("signature")
        for key, value in (("name", name), ("signature", signature)):
            if value is not None and not isinstance(value, str):
                self.count_rejection(BadRequestError.code)
                raise BadRequestError(f"'{key}' must be a string")
        if len(source.encode("utf-8", errors="replace")) > MAX_SOURCE_BYTES:
            self.count_rejection(PayloadTooLargeError.code)
            raise PayloadTooLargeError(
                f"kernel source exceeds the {MAX_SOURCE_BYTES}-byte limit")
        try:
            jk = from_source(source, name=name, signature=signature)
            fp = jk.fingerprint()
            with self._kernel_lock:
                cached = self._kernel_rows.get(fp)
            if cached is not None:
                return cached
            payload = build_row(jk).to_dict()
        except JitTypeError as exc:
            self.count_rejection(KernelRejectedError.code)
            raise KernelRejectedError(str(exc)) from exc
        except ReproError as exc:
            # compiles rejected further down the pipeline (toolchain,
            # verifier, simulated device) are still the user's kernel
            self.count_rejection(KernelRejectedError.code)
            raise KernelRejectedError(
                f"{type(exc).__name__}: {exc}") from exc
        with self._kernel_lock:
            self._kernel_rows.setdefault(fp, payload)
            return self._kernel_rows[fp]


# -- shared request routing ---------------------------------------------------


def dispatch(service: MatrixService, parts: list[str],
             q: Callable[[str, str | None], str | None],
             body: dict | None = None) -> dict:
    """Route one request to the service and stamp the schema version.

    The *single* routing table: the HTTP handler and the in-process
    client both call this, so the two transports cannot drift.  ``body``
    is the decoded JSON request body for the POST endpoints (``None``
    for body-less requests).
    """
    if parts == ["kernel", "submit"]:
        payload = service.submit_kernel(body if body is not None else {})
    elif parts == ["healthz"]:
        payload = service.health()
    elif len(parts) == 4 and parts[0] == "cell":
        payload = service.cell(*parts[1:])
    elif parts == ["table"]:
        payload = service.table(q("format", "text"))
    elif parts == ["advise"]:
        payload = service.advise(
            vendor=q("vendor", None), model=q("model", None),
            language=q("language", "c++"))
    elif parts == ["lint", "routes"]:
        payload = service.lint_report()
    elif parts == ["lint", "perf"]:
        payload = service.lint_perf_report()
    elif parts == ["lint", "traces"]:
        payload = service.lint_traces_report()
    elif parts == ["metrics"]:
        payload = service.snapshot_metrics()
    elif parts == ["perf", "matrix"]:
        payload = service.perf_matrix()
    elif len(parts) == 5 and parts[:2] == ["perf", "cell"]:
        payload = service.perf_cell(*parts[2:])
    elif parts == ["perf", "portability"]:
        payload = service.perf_portability()
    elif parts == ["perf", "static"]:
        payload = service.perf_static()
    elif parts == ["admin", "stores"]:
        payload = service.admin_stores()
    elif parts == ["admin", "stores", "clear"]:
        if body is None:
            raise BadRequestError(
                "/admin/stores/clear is POST-only (send an empty JSON "
                "body)")
        payload = service.clear_stores()
    else:
        raise NotFoundError(f"no such endpoint: /{'/'.join(parts)}")
    return versioned(payload)


# -- the one client surface ---------------------------------------------------


class _BaseClient:
    """Every endpoint method, defined once in terms of ``_request``.

    Subclasses provide only the transport: ``_request`` takes the path
    segments and query parameters and returns the versioned payload.
    """

    def _request(self, parts: list[str],
                 params: dict[str, str] | None = None,
                 body: dict | None = None) -> dict:
        raise NotImplementedError

    def health(self) -> HealthResponse:
        return HealthResponse(self._request(["healthz"]))

    def cell(self, vendor: str, model: str, language: str) -> CellResponse:
        return CellResponse(self._request(["cell", vendor, model, language]))

    def table(self, fmt: str = "text") -> TableResponse:
        return TableResponse(self._request(["table"], {"format": fmt}))

    def advise(self, vendor: str | None = None, model: str | None = None,
               language: str = "c++") -> AdviseResponse:
        params = {"language": language}
        if vendor is not None:
            params["vendor"] = vendor
        if model is not None:
            params["model"] = model
        return AdviseResponse(self._request(["advise"], params))

    def lint_report(self) -> LintReportResponse:
        return LintReportResponse(self._request(["lint", "routes"]))

    def metrics(self) -> MetricsResponse:
        return MetricsResponse(self._request(["metrics"]))

    def perf_matrix(self) -> PerfMatrixResponse:
        return PerfMatrixResponse(self._request(["perf", "matrix"]))

    def perf_cell(self, vendor: str, model: str,
                  language: str) -> PerfCellResponse:
        return PerfCellResponse(
            self._request(["perf", "cell", vendor, model, language]))

    def perf_portability(self) -> PortabilityResponse:
        return PortabilityResponse(self._request(["perf", "portability"]))

    def perf_static(self) -> StaticPerfResponse:
        return StaticPerfResponse(self._request(["perf", "static"]))

    def lint_perf(self) -> PerfLintResponse:
        return PerfLintResponse(self._request(["lint", "perf"]))

    def lint_traces(self) -> TraceLintResponse:
        return TraceLintResponse(self._request(["lint", "traces"]))

    def admin_stores(self) -> AdminStoresResponse:
        return AdminStoresResponse(self._request(["admin", "stores"]))

    def clear_stores(self) -> StoresClearResponse:
        return StoresClearResponse(
            self._request(["admin", "stores", "clear"], body={}))

    def submit_kernel(self, source: str, name: str | None = None,
                      signature: str | None = None) -> KernelSubmitResponse:
        body: dict = {"source": source}
        if name is not None:
            body["name"] = name
        if signature is not None:
            body["signature"] = signature
        return KernelSubmitResponse(
            self._request(["kernel", "submit"], body=body))


class InProcessClient(_BaseClient):
    """The client surface over a :class:`MatrixService`, no sockets."""

    def __init__(self, service: MatrixService):
        self.service = service

    def _request(self, parts: list[str],
                 params: dict[str, str] | None = None,
                 body: dict | None = None) -> dict:
        params = params or {}

        def q(name: str, default: str | None = None) -> str | None:
            return params.get(name, default)

        return dispatch(self.service, list(parts), q, body=body)


class HttpClient(_BaseClient):
    """The client surface over the loopback JSON API.

    Raises the same typed :class:`ServiceError` subclasses the service
    raises in-process (reconstructed from the error envelope) and
    rejects replies from a different ``schema_version``.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def _request(self, parts: list[str],
                 params: dict[str, str] | None = None,
                 body: dict | None = None) -> dict:
        import http.client

        path = "/" + "/".join(urllib.parse.quote(p, safe="") for p in parts)
        if params:
            path += "?" + urllib.parse.urlencode(params)
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            if body is not None:
                conn.request(
                    "POST", path, body=json.dumps(body).encode(),
                    headers={"Content-Type": "application/json"})
            else:
                conn.request("GET", path)
            response = conn.getresponse()
            raw = response.read().decode()
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                raise RemoteServerError(
                    f"undecodable reply (HTTP {response.status}): "
                    f"{raw[:200]!r}", status=response.status) from None
            if response.status >= 400:
                raise error_from_payload(response.status, payload)
            return check_schema_version(payload)
        finally:
            conn.close()


# -- the HTTP server ----------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the bound :class:`MatrixService` via dispatch()."""

    service: MatrixService  # set by make_server on the subclass

    # Silence the default stderr access log (the service has /metrics).
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, indent=1).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, body: dict | None) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        parts = [urllib.parse.unquote(p)
                 for p in parsed.path.strip("/").split("/") if p]
        query = urllib.parse.parse_qs(parsed.query)

        def q(name: str, default: str | None = None) -> str | None:
            values = query.get(name)
            return values[0] if values else default

        try:
            self._send(200, dispatch(self.service, parts, q, body=body))
        except _ServiceError as exc:
            self._send(exc.status, error_envelope(exc))
        except Exception as exc:  # pragma: no cover - defensive
            err = RemoteServerError(f"{type(exc).__name__}: {exc}")
            self._send(err.status, error_envelope(err))

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle(body=None)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            body = json.loads(raw.decode("utf-8", errors="replace")) \
                if raw else {}
        except json.JSONDecodeError:
            # a corrupt body never reaches the service, so count it here
            # (only for the submission endpoint — it owns the counters)
            if self.path.strip("/").startswith("kernel/"):
                self.service.metrics.counter("jit_submissions_total").inc()
                self.service.count_rejection(BadRequestError.code)
            err = BadRequestError("request body is not valid JSON")
            self._send(err.status, error_envelope(err))
            return
        self._handle(body=body)


def make_server(service: MatrixService, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Bind a loopback JSON server for ``service`` (port 0 = ephemeral).

    The caller drives it: ``server.serve_forever()`` inline, or in a
    daemon thread for embedding; ``server.server_address`` holds the
    bound (host, port).
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)
