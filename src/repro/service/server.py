"""Queryable serving layer for the evaluated compatibility matrix.

Two transports, one interface:

* :class:`InProcessClient` — wraps a :class:`MatrixService` directly;
  the test suite and embedding applications use this path (no sockets).
* :class:`HttpClient` — the same five methods over a loopback JSON API
  served by :func:`make_server` (a stdlib ``ThreadingHTTPServer``; the
  server binds 127.0.0.1 by default and no external network is ever
  required).

Endpoints (all GET, all JSON):

====================================  =======================================
path                                  payload
====================================  =======================================
``/healthz``                          liveness + cell count
``/cell/<vendor>/<model>/<lang>``     one cell: ratings, routes, probe
                                      outcomes (the store's JSON schema)
``/table?format=F``                   rendered Figure 1 (text, markdown,
                                      html, tex, yaml) from the served
                                      matrix
``/advise?vendor=V&language=L``       route recommendations (also
                                      ``model=M&language=L``; neither:
                                      portable models per language)
``/lint/routes``                      static route-evidence cross-check
                                      report (RE01–RE03 diagnostics)
``/metrics``                          scheduler/store/compile-cache/
                                      interpreter counters and histograms
====================================  =======================================

The service evaluates the matrix lazily on first use through the
concurrent scheduler, against an optional persistent result store — a
warm store makes startup serve all 51 cells without executing a single
probe.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.enums import Language, Model, SupportCategory, Vendor
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import BuildReport, build_matrix_concurrent
from repro.service.store import ResultStore, cell_to_dict


class ServiceError(Exception):
    """Bad request against the service API (maps to HTTP 400/404)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def _parse_vendor(text: str) -> Vendor:
    for v in Vendor:
        if v.value.lower() == text.lower():
            return v
    raise ServiceError(f"unknown vendor '{text}'", status=404)


def _parse_model(text: str) -> Model:
    for m in Model:
        if m.value.lower() == text.lower():
            return m
    raise ServiceError(f"unknown model '{text}'", status=404)


_LANGUAGE_ALIASES = {
    "c++": Language.CPP, "cpp": Language.CPP, "cxx": Language.CPP,
    "fortran": Language.FORTRAN, "f": Language.FORTRAN,
    "python": Language.PYTHON, "py": Language.PYTHON,
}


def _parse_language(text: str) -> Language:
    try:
        return _LANGUAGE_ALIASES[text.lower()]
    except KeyError:
        raise ServiceError(f"unknown language '{text}'", status=404) from None


class MatrixService:
    """The in-process core: owns the matrix, store, and metrics.

    Thread-safe: the lazy build is single-flighted behind a lock and
    every query method reads the immutable built matrix.
    """

    def __init__(
        self,
        *,
        jobs: int = 4,
        store: ResultStore | str | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.jobs = jobs
        if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
            store = ResultStore(store)
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._report: BuildReport | None = None
        self._build_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def ensure_built(self) -> BuildReport:
        """Build (or load) the matrix once; later calls are free."""
        with self._build_lock:
            if self._report is None:
                self._report = build_matrix_concurrent(
                    self.jobs, store=self.store, metrics=self.metrics)
            return self._report

    @property
    def matrix(self):
        return self.ensure_built().matrix

    # -- queries (the shared client interface) -----------------------------

    def health(self) -> dict:
        built = self._report is not None
        return {
            "status": "ok",
            "built": built,
            "cells": self._report.matrix.n_cells if built else 0,
        }

    def cell(self, vendor: str, model: str, language: str) -> dict:
        v = _parse_vendor(vendor)
        m = _parse_model(model)
        l = _parse_language(language)
        try:
            result = self.matrix.cell(v, m, l)
        except KeyError:
            raise ServiceError(
                f"no cell {v.value}/{m.value}/{l.value} in the matrix "
                f"(not a Figure 1 combination)", status=404) from None
        return cell_to_dict(result)

    def table(self, fmt: str = "text") -> dict:
        from repro.core.render import RENDERERS, matrix_lookup

        if fmt not in RENDERERS:
            raise ServiceError(
                f"unknown format '{fmt}' (available: "
                f"{', '.join(sorted(RENDERERS))})")
        lookup = matrix_lookup(self.matrix)
        renderer = RENDERERS[fmt]
        title = "Figure 1 (derived empirically on the simulated system)"
        if fmt in ("text", "markdown", "html", "tex"):
            rendered = renderer(lookup, title=title)  # type: ignore[call-arg]
        else:
            rendered = renderer(lookup)
        return {"format": fmt, "table": rendered}

    def advise(self, vendor: str | None = None, model: str | None = None,
               language: str = "c++") -> dict:
        from repro.core.advisor import Advisor

        lang = _parse_language(language)
        advisor = Advisor(self.matrix, minimum=SupportCategory.LIMITED)
        if model is not None:
            m = _parse_model(model)
            recs = advisor.platforms_for_model(m, lang)
            scope = f"platforms for {m.value} / {lang.value}"
        elif vendor is not None:
            v = _parse_vendor(vendor)
            recs = advisor.models_for_platform(v, lang)
            scope = f"models usable on {v.value} from {lang.value}"
        else:
            models = advisor.portable_models(lang, SupportCategory.LIMITED)
            return {
                "scope": f"portable models from {lang.value}",
                "recommendations": [m.value for m in models],
            }
        return {"scope": scope, "recommendations": [str(r) for r in recs]}

    def lint_report(self) -> dict:
        from repro.analysis.routes_evidence import cross_check

        report = cross_check()
        return json.loads(report.to_json())

    def snapshot_metrics(self) -> dict:
        snap = self.metrics.snapshot()
        if self.store is not None:
            snap["store"] = self.store.stats.as_dict()
        snap["service"] = {
            "jobs": self.jobs,
            "built": self._report is not None,
            "cells_from_store": (
                self._report.cells_from_store if self._report else 0),
            "cells_evaluated": (
                self._report.cells_evaluated if self._report else 0),
        }
        return snap


class InProcessClient:
    """Client interface over a :class:`MatrixService`, no sockets.

    Mirrors :class:`HttpClient` method-for-method so tests and embedders
    can swap transports freely.
    """

    def __init__(self, service: MatrixService):
        self.service = service

    def health(self) -> dict:
        return self.service.health()

    def cell(self, vendor: str, model: str, language: str) -> dict:
        return self.service.cell(vendor, model, language)

    def table(self, fmt: str = "text") -> dict:
        return self.service.table(fmt)

    def advise(self, vendor: str | None = None, model: str | None = None,
               language: str = "c++") -> dict:
        return self.service.advise(vendor, model, language)

    def lint_report(self) -> dict:
        return self.service.lint_report()

    def metrics(self) -> dict:
        return self.service.snapshot_metrics()


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the bound :class:`MatrixService`."""

    service: MatrixService  # set by make_server on the subclass

    # Silence the default stderr access log (the service has /metrics).
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, indent=1).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urllib.parse.urlsplit(self.path)
        parts = [urllib.parse.unquote(p)
                 for p in parsed.path.strip("/").split("/") if p]
        query = urllib.parse.parse_qs(parsed.query)

        def q(name: str, default: str | None = None) -> str | None:
            values = query.get(name)
            return values[0] if values else default

        try:
            if parts == ["healthz"]:
                self._send(200, self.service.health())
            elif len(parts) == 4 and parts[0] == "cell":
                self._send(200, self.service.cell(*parts[1:]))
            elif parts == ["table"]:
                self._send(200, self.service.table(q("format", "text")))
            elif parts == ["advise"]:
                self._send(200, self.service.advise(
                    vendor=q("vendor"), model=q("model"),
                    language=q("language", "c++")))
            elif parts == ["lint", "routes"]:
                self._send(200, self.service.lint_report())
            elif parts == ["metrics"]:
                self._send(200, self.service.snapshot_metrics())
            else:
                self._send(404, {"error": f"no such endpoint: {parsed.path}"})
        except ServiceError as exc:
            self._send(exc.status, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})


def make_server(service: MatrixService, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Bind a loopback JSON server for ``service`` (port 0 = ephemeral).

    The caller drives it: ``server.serve_forever()`` inline, or in a
    daemon thread for embedding; ``server.server_address`` holds the
    bound (host, port).
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


class HttpClient:
    """The client interface over the loopback JSON API."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def _get(self, path: str) -> dict:
        import http.client

        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            payload = json.loads(response.read().decode())
            if response.status >= 400:
                raise ServiceError(
                    payload.get("error", f"HTTP {response.status}"),
                    status=response.status)
            return payload
        finally:
            conn.close()

    def health(self) -> dict:
        return self._get("/healthz")

    def cell(self, vendor: str, model: str, language: str) -> dict:
        quoted = "/".join(urllib.parse.quote(p, safe="")
                          for p in (vendor, model, language))
        return self._get(f"/cell/{quoted}")

    def table(self, fmt: str = "text") -> dict:
        return self._get(f"/table?format={urllib.parse.quote(fmt)}")

    def advise(self, vendor: str | None = None, model: str | None = None,
               language: str = "c++") -> dict:
        params = {"language": language}
        if vendor is not None:
            params["vendor"] = vendor
        if model is not None:
            params["model"] = model
        return self._get(f"/advise?{urllib.parse.urlencode(params)}")

    def lint_report(self) -> dict:
        return self._get("/lint/routes")

    def metrics(self) -> dict:
        return self._get("/metrics")
