"""Matrix evaluation service.

Turns the one-shot 51-cell matrix build into a system: a dependency-
aware concurrent scheduler on a generic job engine (:mod:`.scheduler`),
a persistent content-addressed result store (:mod:`.store`), a
queryable serving layer with in-process and loopback-HTTP clients
behind one versioned wire contract (:mod:`.server`, :mod:`.api`), and a
metrics registry tying the pipeline's counters together
(:mod:`.metrics`).

The one invariant everything here is built around: **the scheduled
build is bit-identical to the sequential build at every worker
count** — concurrency and persistence change how fast answers arrive,
never the answers.
"""

from repro.service.api import (
    SCHEMA_VERSION,
    AdviseResponse,
    ApiResponse,
    BadRequestError,
    CellResponse,
    HealthResponse,
    KernelRejectedError,
    KernelSubmitResponse,
    LintReportResponse,
    MatrixClient,
    MetricsResponse,
    NotFoundError,
    PayloadTooLargeError,
    PerfCellResponse,
    PerfMatrixResponse,
    PortabilityResponse,
    RemoteServerError,
    SchemaVersionError,
    ServiceError,
    TableResponse,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.scheduler import (
    BuildCancelled,
    BuildReport,
    Job,
    JobEngine,
    JobKind,
    JobTimeout,
    MatrixScheduler,
    SchedulerError,
    build_matrix_concurrent,
)
from repro.service.server import (
    HttpClient,
    InProcessClient,
    MatrixService,
    dispatch,
    make_server,
)
from repro.service.store import (
    ResultStore,
    StoreIntegrityError,
    StoreStats,
    cell_from_dict,
    cell_to_dict,
    environment_fingerprint,
)

__all__ = [
    "SCHEMA_VERSION",
    "AdviseResponse",
    "ApiResponse",
    "BadRequestError",
    "BuildCancelled",
    "BuildReport",
    "CellResponse",
    "Counter",
    "Gauge",
    "HealthResponse",
    "Histogram",
    "HttpClient",
    "InProcessClient",
    "Job",
    "JobEngine",
    "JobKind",
    "JobTimeout",
    "KernelRejectedError",
    "KernelSubmitResponse",
    "LintReportResponse",
    "MatrixClient",
    "MatrixScheduler",
    "MatrixService",
    "MetricsRegistry",
    "MetricsResponse",
    "NotFoundError",
    "PayloadTooLargeError",
    "PerfCellResponse",
    "PerfMatrixResponse",
    "PortabilityResponse",
    "RemoteServerError",
    "ResultStore",
    "SchedulerError",
    "SchemaVersionError",
    "ServiceError",
    "StoreIntegrityError",
    "StoreStats",
    "TableResponse",
    "build_matrix_concurrent",
    "cell_from_dict",
    "cell_to_dict",
    "dispatch",
    "environment_fingerprint",
    "make_server",
]
