"""Matrix evaluation service.

Turns the one-shot 51-cell matrix build into a system: a dependency-
aware concurrent scheduler (:mod:`.scheduler`), a persistent content-
addressed result store (:mod:`.store`), a queryable serving layer with
in-process and loopback-HTTP clients (:mod:`.server`), and a metrics
registry tying the pipeline's counters together (:mod:`.metrics`).

The one invariant everything here is built around: **the scheduled
build is bit-identical to the sequential build at every worker
count** — concurrency and persistence change how fast answers arrive,
never the answers.
"""

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.scheduler import (
    BuildCancelled,
    BuildReport,
    Job,
    JobKind,
    JobTimeout,
    MatrixScheduler,
    SchedulerError,
    build_matrix_concurrent,
)
from repro.service.server import (
    HttpClient,
    InProcessClient,
    MatrixService,
    ServiceError,
    make_server,
)
from repro.service.store import (
    ResultStore,
    StoreIntegrityError,
    StoreStats,
    cell_from_dict,
    cell_to_dict,
    environment_fingerprint,
)

__all__ = [
    "BuildCancelled",
    "BuildReport",
    "Counter",
    "Gauge",
    "Histogram",
    "HttpClient",
    "InProcessClient",
    "Job",
    "JobKind",
    "JobTimeout",
    "MatrixScheduler",
    "MatrixService",
    "MetricsRegistry",
    "ResultStore",
    "SchedulerError",
    "ServiceError",
    "StoreIntegrityError",
    "StoreStats",
    "build_matrix_concurrent",
    "cell_from_dict",
    "cell_to_dict",
    "environment_fingerprint",
    "make_server",
]
