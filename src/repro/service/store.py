"""Persistent, content-addressed store for derived matrix cells.

The sequential reproduction recomputes all 51 cells — 483 probes, ~500
compiles — on every invocation and throws the results away at exit.
This module gives cell results a durable home so a restart re-derives
only what changed.

Keying (content addressing)
---------------------------

A stored cell is valid only for the exact inputs that produced it.  The
key of a cell is ``sha256(environment_fingerprint | vendor | model |
language)`` where the *environment fingerprint* hashes everything a
cell's evaluation can observe:

* the **toolchain snapshot** — every registered toolchain's name,
  version, maturity, opt level, and full capability rows (targets,
  features, flags), in the spirit of the paper's "snapshot of a living
  overview": a new compiler release is a new environment;
* the **route registry** — route ids, provenance (provider, mechanism,
  maturity), via-chains, and probe-suite bindings;
* the **probe suites** — every probe label and method, per suite;
* the **kernel library** — per-kernel content fingerprints reusing the
  same structural-repr hashing as ``TranslationUnit.fingerprint`` (the
  PR-2 compile-cache machinery), so editing a kernel invalidates
  exactly the cells whose probes execute it (conservatively: all, since
  suites share the library);
* the **classifier thresholds** in force.

Change any of these and every lookup misses (the filename embeds the
key), so a warm restart falls back to re-deriving; leave them alone and
a warm restart serves all 51 cells with **zero probe executions**.

Writes are atomic (temp file + ``os.replace`` in the same directory)
and safe under concurrent writers; payloads are plain JSON for
inspectability and CI artifact upload.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.classifier import DEFAULT_THRESHOLDS, Thresholds, classify_route
from repro.core.matrix import CellResult, RouteResult
from repro.core.probes import PROBE_SUITES, Probe, ProbeOutcome, SuiteResult
from repro.core.routes import Route, all_routes, routes_for
from repro.enums import Language, Model, Vendor

_log = logging.getLogger(__name__)

#: Bump when the on-disk layout or serialization schema changes.
STORE_SCHEMA = 1

Cell = tuple[Vendor, Model, Language]


def _kernel_library_fingerprint(h: "hashlib._Hash") -> None:
    """Feed per-kernel structural fingerprints into ``h``.

    Mirrors :meth:`repro.frontends.source.TranslationUnit.fingerprint`:
    instruction/operand reprs are content-based, so the repr of a body
    is a stable structural hash of the code the probes will compile.
    """
    from repro.kernels import KERNEL_LIBRARY

    for name in sorted(KERNEL_LIBRARY):
        ir = KERNEL_LIBRARY[name].ir
        params = ",".join(
            f"{p.name}:{'*' if p.is_pointer else ''}{p.dtype.name}"
            for p in ir.params
        )
        h.update(f"#{ir.name}({params})".encode())
        h.update(repr(ir.body).encode())
        for tag in sorted(ir.features):
            h.update(f"+{tag}".encode())


def environment_fingerprint(thresholds: Thresholds = DEFAULT_THRESHOLDS) -> str:
    """Hash of every input a cell evaluation can observe (see module doc)."""
    from repro.compilers.registry import all_toolchains

    h = hashlib.sha256()
    h.update(f"schema={STORE_SCHEMA}".encode())
    h.update(repr(thresholds).encode())
    for r in all_routes():
        h.update(
            f"|route:{r.route_id};{r.vendor.value};{r.model.value};"
            f"{r.language.value};{r.provider.value};{r.mechanism.value};"
            f"{r.maturity.value};{r.via};{r.probe_suite};"
            f"{r.description_id}".encode()
        )
    for suite in sorted(PROBE_SUITES):
        for p in PROBE_SUITES[suite]:
            h.update(f"|probe:{suite};{p.label};{p.method}".encode())
    for tc in all_toolchains():
        h.update(
            f"|tc:{tc.name};{tc.version};{tc.provider.value};"
            f"{tc.maturity.value};opt{tc.opt_level}".encode()
        )
        for cap in sorted(
            tc.capabilities, key=lambda c: (c.model.value, c.language.value)
        ):
            h.update(
                f"|cap:{cap.model.value};{cap.language.value};"
                f"{','.join(sorted(t.value for t in cap.targets))};"
                f"{','.join(sorted(cap.features))};{cap.since};"
                f"{cap.flag}".encode()
            )
    _kernel_library_fingerprint(h)
    return h.hexdigest()


def cell_key(env_fingerprint: str, cell: Cell) -> str:
    """Content-addressed key of one cell under one environment."""
    vendor, model, language = cell
    h = hashlib.sha256()
    h.update(env_fingerprint.encode())
    h.update(f"|{vendor.value}|{model.value}|{language.value}".encode())
    return h.hexdigest()


# -- serialization ------------------------------------------------------------


def cell_to_dict(cell: CellResult) -> dict:
    """Plain-JSON form of a cell (stable; the server reuses it)."""
    return {
        "vendor": cell.vendor.value,
        "model": cell.model.value,
        "language": cell.language.value,
        "primary": cell.primary.name,
        "secondary": cell.secondary.name if cell.secondary else None,
        "routes": [
            {
                "route_id": rr.route.route_id,
                "category": rr.category.name,
                "coverage": rr.coverage,
                "suite": rr.suite.suite,
                "outcomes": [
                    {
                        "label": o.probe.label,
                        "method": o.probe.method,
                        "passed": o.passed,
                        "error": o.error,
                    }
                    for o in rr.suite.outcomes
                ],
            }
            for rr in cell.routes
        ],
    }


class StoreIntegrityError(Exception):
    """A stored payload does not match the live registries."""


def cell_from_dict(payload: dict,
                   thresholds: Thresholds = DEFAULT_THRESHOLDS) -> CellResult:
    """Reconstruct a :class:`CellResult` bit-identical to the original.

    Routes resolve to the *live registry instances* by id and categories
    are re-derived through the §3 classifier, so a reconstructed cell
    compares equal (dataclass equality) to a freshly evaluated one.  A
    payload whose route ids or categories no longer match the registry
    raises :class:`StoreIntegrityError` — the environment fingerprint
    should have prevented the lookup, so a mismatch means a corrupt or
    hand-edited entry.
    """
    vendor = Vendor(payload["vendor"])
    model = Model(payload["model"])
    language = Language(payload["language"])
    by_id: dict[str, Route] = {
        r.route_id: r for r in routes_for(vendor, model, language)
    }
    results: list[RouteResult] = []
    for entry in payload["routes"]:
        route = by_id.get(entry["route_id"])
        if route is None:
            raise StoreIntegrityError(
                f"stored route '{entry['route_id']}' is not registered for "
                f"{vendor.value}/{model.value}/{language.value}"
            )
        suite = SuiteResult(
            suite=entry["suite"],
            outcomes=[
                ProbeOutcome(
                    probe=Probe(o["label"], o["method"]),
                    passed=o["passed"],
                    error=o["error"],
                )
                for o in entry["outcomes"]
            ],
        )
        category = classify_route(route, suite.coverage, thresholds)
        if category.name != entry["category"]:
            raise StoreIntegrityError(
                f"stored category {entry['category']} for "
                f"'{entry['route_id']}' disagrees with the classifier "
                f"({category.name}); entry is stale or corrupt"
            )
        results.append(RouteResult(route=route, suite=suite, category=category))
    return CellResult(vendor=vendor, model=model, language=language,
                      routes=results)


# -- the store ---------------------------------------------------------------


@dataclass
class StoreStats:
    """Lookup/write counters for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalid: int = 0  # corrupt/unreadable entries treated as misses
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def _inc(self, attr: str) -> None:
        with self._lock:
            setattr(self, attr, getattr(self, attr) + 1)

    def as_dict(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "writes": self.writes, "invalid": self.invalid}


class ResultStore:
    """Content-addressed on-disk cell store (see module docstring).

    Layout::

        <root>/
          meta.json                    # schema + current env fingerprint
          cells/<v>_<m>_<l>.<key12>.json

    The 12-hex key prefix in the filename is the address: a lookup under
    a changed environment computes a different key and simply misses.
    Stale entries are inert; :meth:`prune` removes them.
    """

    def __init__(self, root: str | os.PathLike,
                 thresholds: Thresholds = DEFAULT_THRESHOLDS,
                 metrics=None):
        self.root = Path(root)
        self.thresholds = thresholds
        self.stats = StoreStats()
        #: Optional :class:`~repro.service.metrics.MetricsRegistry`;
        #: corrupt entries are counted there when present.
        self.metrics = metrics
        self._fingerprint: str | None = None
        self._lock = threading.Lock()
        (self.root / "cells").mkdir(parents=True, exist_ok=True)

    def _corrupt(self, path: Path, exc: Exception) -> None:
        """A stored entry exists but cannot be decoded: warn, count, miss."""
        self.stats._inc("invalid")
        _log.warning(
            "corrupt store entry treated as miss: path=%s error=%s: %s",
            path, type(exc).__name__, exc)
        if self.metrics is not None:
            self.metrics.counter("store_corrupt_entries").inc()

    @property
    def fingerprint(self) -> str:
        """The environment fingerprint (computed once per store instance)."""
        with self._lock:
            if self._fingerprint is None:
                self._fingerprint = environment_fingerprint(self.thresholds)
                self._write_meta(self._fingerprint)
            return self._fingerprint

    def _write_meta(self, fingerprint: str) -> None:
        meta = {"schema": STORE_SCHEMA, "environment": fingerprint}
        self._atomic_write(self.root / "meta.json",
                           json.dumps(meta, indent=2) + "\n")

    def _path(self, cell: Cell) -> Path:
        vendor, model, language = cell
        key = cell_key(self.fingerprint, cell)
        slug = f"{vendor.value}_{model.value}_{language.value}".lower()
        slug = slug.replace("++", "pp").replace("/", "-").replace(" ", "-")
        return self.root / "cells" / f"{slug}.{key[:12]}.json"

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(text)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- lookup / persist --------------------------------------------------

    def load(self, cell: Cell) -> CellResult | None:
        """Return the stored cell for the *current* environment, or None."""
        path = self._path(cell)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats._inc("misses")
            return None
        except (OSError, json.JSONDecodeError) as exc:
            self._corrupt(path, exc)
            return None
        try:
            result = cell_from_dict(payload, self.thresholds)
        except (StoreIntegrityError, KeyError, ValueError) as exc:
            self._corrupt(path, exc)
            return None
        self.stats._inc("hits")
        return result

    def save(self, cell_result: CellResult) -> Path:
        """Persist one cell under the current environment (atomic)."""
        cell = (cell_result.vendor, cell_result.model, cell_result.language)
        path = self._path(cell)
        self._atomic_write(
            path, json.dumps(cell_to_dict(cell_result), indent=1) + "\n")
        self.stats._inc("writes")
        return path

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[Path]:
        return sorted((self.root / "cells").glob("*.json"))

    def prune(self) -> int:
        """Delete entries not addressed by the current environment."""
        from repro.enums import all_cells

        live = {self._path(c) for c in all_cells()}
        removed = 0
        for path in self.entries():
            if path not in live:
                path.unlink()
                removed += 1
        return removed
