"""Metrics registry for the matrix evaluation service.

Thread-safe counters, gauges, and latency histograms, collected by the
scheduler, the result store, and the serving layer, and exposed at the
server's ``/metrics`` endpoint and via ``gpu-compat eval --stats``.

A snapshot also folds in the two pre-existing process-wide counter
sets — the content-keyed compile cache
(:func:`repro.compilers.toolchain.compile_cache_stats`) and the
interpreter launch/batch totals
(:func:`repro.isa.interpreter.snapshot_interpreter_totals`) — so one
document describes the whole pipeline: queue behaviour, job retries,
store reuse, compile reuse, and executed work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


#: Default latency buckets, in seconds.  Jobs here range from ~100 us
#: (classify) to a few hundred ms (a heavy probe suite on a cold cache).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass
class Counter:
    """Monotonic event counter."""

    name: str
    value: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def get(self) -> int:
        with self._lock:
            return self.value


@dataclass
class Gauge:
    """Last-written value (e.g. configured worker count)."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def get(self) -> float:
        with self._lock:
            return self.value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``observe`` is O(#buckets); snapshots report cumulative bucket
    counts (Prometheus style) so percentile estimates are possible
    downstream without storing samples.
    """

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            slot = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = i
                    break
            self._counts[slot] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    def snapshot(self) -> dict:
        with self._lock:
            cumulative: list[int] = []
            running = 0
            for c in self._counts:
                running += c
                cumulative.append(running)
            return {
                "count": self._count,
                "sum": round(self._sum, 9),
                "min": self._min,
                "max": self._max,
                "mean": round(self._sum / self._count, 9) if self._count else None,
                "buckets": {
                    **{f"le_{b:g}": n
                       for b, n in zip(self.buckets, cumulative)},
                    "le_inf": cumulative[-1],
                },
            }


class MetricsRegistry:
    """Named counters/gauges/histograms with one-call JSON snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration (get-or-create, safe from any thread) ---------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, buckets)
            return self._histograms[name]

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> dict:
        """All service metrics plus the process-wide pipeline counters."""
        from repro.compilers.toolchain import compile_cache_stats
        from repro.isa.interpreter import snapshot_interpreter_totals

        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        cc = compile_cache_stats().snapshot()
        it = snapshot_interpreter_totals()
        return {
            "counters": {n: c.get() for n, c in sorted(counters.items())},
            "gauges": {n: g.get() for n, g in sorted(gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(histograms.items())},
            "compile_cache": {
                "hits": cc.hits,
                "misses": cc.misses,
                "hit_rate": round(cc.hit_rate, 6),
            },
            "interpreter": {
                "launches": it.launches,
                "batches": it.stats.batches,
                "threads": it.stats.threads,
                "instructions": it.stats.instructions,
                "bytes_moved": it.stats.bytes_moved,
            },
            "trace": {
                "hits": it.trace.hits,
                "misses": it.trace.misses,
                "bailouts": it.trace.bailouts,
                "traced_launches": it.trace.traced_launches,
                "traced_batches": it.trace.traced_batches,
                "bailout_reasons": dict(sorted(it.trace.reasons.items())),
            },
        }
