"""Signature parsing and normalization for the ``@kernel`` decorator.

A signature names the parameter types of a kernel, Numba-style.  It can
be spelled three ways:

* a string — ``"void(i64, f64, f64[:], f64[:])"`` (the return type is
  optional; when present it must be ``void``);
* a sequence of type spellings — ``("i64", "f64[:]")`` or the
  :class:`~repro.frontends.kernel_dsl.TypeRef` / ``ArrayAnn`` objects
  themselves (``(i64, f64[:])``);
* ``None`` — the autojit path; parameter types come from the function's
  annotations instead.

The *void-return rule* (mirroring numba-dppy's ``kernel`` decorator):
kernels communicate through their array parameters, never through a
return value, so any spelled return type other than ``void`` is a
:class:`~repro.errors.JitTypeError` at decoration time.
"""

from __future__ import annotations

from repro.errors import JitTypeError
from repro.frontends.kernel_dsl import _TYPE_REFS, ArrayAnn, TypeRef

#: Spellings accepted for "no return value" in a signature string.
VOID_NAMES = frozenset({"void", "none"})

#: Reverse map dtype -> canonical scalar spelling ("f64", "i32", ...).
_DTYPE_NAMES = {ref.dtype: name for name, ref in _TYPE_REFS.items()}


def parse_type(text: str) -> TypeRef | ArrayAnn:
    """One type spelling -> a DSL annotation object.

    ``"f64"`` -> scalar, ``"f64[:]"`` -> array; anything else raises.
    """
    t = text.strip()
    if t.endswith("[:]"):
        base = _TYPE_REFS.get(t[:-3].strip())
        if base is not None:
            return ArrayAnn(base.dtype)
    elif t in _TYPE_REFS:
        return _TYPE_REFS[t]
    raise JitTypeError(
        f"unknown type spelling {text!r} in kernel signature "
        f"(use one of {', '.join(sorted(_TYPE_REFS))}, "
        f"optionally suffixed [:])")


def _coerce(item: object) -> TypeRef | ArrayAnn:
    if isinstance(item, (TypeRef, ArrayAnn)):
        return item
    if isinstance(item, str):
        return parse_type(item)
    raise JitTypeError(
        f"kernel signature entries must be DSL types or type strings, "
        f"got {item!r}")


def normalize_signature(signature: object) -> tuple[TypeRef | ArrayAnn, ...]:
    """Normalize any accepted signature spelling to a tuple of types.

    Enforces the void-return rule: a string signature that spells a
    return type must spell ``void``.
    """
    if isinstance(signature, str):
        text = signature.strip()
        if "(" in text:
            ret, _, rest = text.partition("(")
            ret = ret.strip()
            if not rest.endswith(")"):
                raise JitTypeError(
                    f"malformed kernel signature {signature!r} "
                    "(expected 'void(type, ...)')")
            if ret and ret.lower() not in VOID_NAMES:
                raise JitTypeError(
                    f"kernels cannot return values: signature return "
                    f"type must be void, got {ret!r}")
            body = rest[:-1].strip()
        else:
            body = text
        if not body:
            return ()
        return tuple(parse_type(p) for p in body.split(","))
    if isinstance(signature, (tuple, list)):
        return tuple(_coerce(item) for item in signature)
    raise JitTypeError(
        f"unsupported kernel signature {signature!r} "
        "(use a string, a tuple of types, or None for autojit)")


def type_name(ann: TypeRef | ArrayAnn) -> str:
    """Canonical spelling of one annotation object."""
    if isinstance(ann, ArrayAnn):
        return f"{_DTYPE_NAMES[ann.dtype]}[:]"
    return _DTYPE_NAMES[ann.dtype]


def signature_text(argtypes: tuple[TypeRef | ArrayAnn, ...]) -> str:
    """Canonical string form, always void-returning."""
    return f"void({', '.join(type_name(t) for t in argtypes)})"
