"""A personal Figure-1 row for a user-submitted kernel.

``JitKernel.compatibility_row()`` answers the serving-system question
the ROADMAP's north star poses: *for the kernel you just wrote, which
vendors can run it, through which packages, and how well?*  The library
matrix classifies fixed probes; this module runs the **user's** kernel
through every registered Python-column route per vendor, verifies each
execution against the pure-Python reference oracle
(:mod:`repro.jit.reference`), and folds the outcomes through the same
§3 classifier that rates Figure 1 — so a user row and the paper matrix
are rated by one rule, not two.

Serialization (:meth:`CompatibilityRow.to_dict`) is deliberately
deterministic — vendors in ``VENDOR_ORDER``, routes in registry order,
plain ``dict``/``list``/scalars only — because the service contract
promises byte-identical JSON for the same kernel across transports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.enums import VENDOR_ORDER, Language, Model, SupportCategory, Vendor
from repro.errors import JitTypeError, ReproError
from repro.core.classifier import DEFAULT_THRESHOLDS, classify_route
from repro.core.matrix import aggregate_primary
from repro.core.routes import Route, routes_for
from repro.gpu.device import Device
from repro.gpu.specs import default_spec
from repro.jit.reference import reference_run
from repro.kernels import BLOCK


@dataclass
class RouteCell:
    """One route's outcome for the submitted kernel."""

    route_id: str
    label: str
    via: str
    ok: bool
    category: SupportCategory
    coverage: float
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "route": self.route_id,
            "label": self.label,
            "via": self.via,
            "status": "ok" if self.ok else "error",
            "category": self.category.name.lower(),
            "coverage": self.coverage,
            "error": self.error,
        }


@dataclass
class VendorRow:
    """All routes of one vendor, with the aggregated rating."""

    vendor: Vendor
    cells: list[RouteCell] = field(default_factory=list)
    primary: SupportCategory = SupportCategory.NONE

    def to_dict(self) -> dict:
        return {
            "vendor": self.vendor.value,
            "primary": self.primary.name.lower(),
            "symbol": self.primary.symbol,
            "routes": [c.to_dict() for c in self.cells],
        }


@dataclass
class CompatibilityRow:
    """The full personal row: per-vendor ratings + kernelsan lint."""

    kernel: str
    signature: str
    fingerprint: str
    vendors: list[VendorRow] = field(default_factory=list)
    lint_errors: int = 0
    lint_warnings: int = 0
    lint_findings: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "signature": self.signature,
            "fingerprint": self.fingerprint,
            "lint": {
                "errors": self.lint_errors,
                "warnings": self.lint_warnings,
                "findings": self.lint_findings,
            },
            "vendors": [v.to_dict() for v in self.vendors],
        }

    def render(self) -> str:
        """Terminal rendering in the Figure-1 style."""
        lines = [f"{self.kernel} {self.signature}",
                 f"  fingerprint {self.fingerprint[:16]}  "
                 f"kernelsan: {self.lint_errors} error(s), "
                 f"{self.lint_warnings} warning(s)"]
        for v in self.vendors:
            lines.append(f"  {v.vendor.value:<8} {v.primary.symbol} "
                         f"{v.primary.label}")
            for c in v.cells:
                mark = "ok " if c.ok else "ERR"
                extra = "" if c.ok else f"  [{c.error}]"
                lines.append(f"    {mark} {c.label:<12} via {c.via}{extra}")
        return "\n".join(lines)


def synthesize_args(jk, n: int, seed: int):
    """Deterministic launch arguments from the kernel's signature.

    Array parameters become random ``f64`` buffers of length ``n``;
    the first integer scalar receives ``n`` (the idiomatic element
    count), later integer scalars a small constant, float scalars a
    fixed non-trivial value.  Verification only needs determinism, not
    realism: routes and the reference start from identical buffers.
    """
    kfn = jk.kernelfn
    rng = np.random.default_rng(seed)
    args: list = []
    saw_count = False
    for is_ptr, dt in zip(kfn.arg_is_pointer, kfn.arg_dtypes):
        if is_ptr:
            if dt.name != "f64":
                raise JitTypeError(
                    f"compatibility_row() runs through the Python-package "
                    f"routes, which carry f64 device arrays; array "
                    f"parameter of type {dt.name}[:] is not supported "
                    f"there (compile()/inspect_asm() still work)")
            args.append(rng.random(n))
        elif dt.is_float:
            args.append(1.5)
        elif not saw_count:
            args.append(n)
            saw_count = True
        else:
            args.append(3)
    return args


def _run_route(route: Route, jk, host_args, ref, n: int):
    """Execute the kernel through one route and verify bit-identity."""
    kfn = jk.kernelfn
    device = Device(default_spec(route.vendor))
    pkg = route.chain(device)
    launcher = pkg.raw_kernel(kfn)
    dev_args: list = []
    arrays: list[tuple[int, object]] = []
    for i, (a, is_ptr) in enumerate(zip(host_args, kfn.arg_is_pointer)):
        if is_ptr:
            g = pkg.asarray(np.asarray(a))
            dev_args.append(g)
            arrays.append((i, g))
        else:
            dev_args.append(a)
    launcher(n, dev_args)
    for i, g in arrays:
        got = pkg.asnumpy(g)
        if not np.array_equal(got, ref[i]):
            raise ReproError(
                f"result mismatch vs reference in argument {i}")


def build_row(jk, n: int = 2048, seed: int = 12345,
              thresholds=None) -> CompatibilityRow:
    """Run ``jk`` across every Python-column route and classify.

    The launch geometry is the packages' own 1-D convention
    (``grid = ceil(n / 256)``, ``block = 256``) and the oracle is
    :func:`~repro.jit.reference.reference_run` at the same geometry, so
    "works" means *bit-identical to the Python source's semantics*, not
    merely "didn't crash".
    """
    thresholds = thresholds or DEFAULT_THRESHOLDS
    host_args = synthesize_args(jk, n, seed)
    grid = (max(1, (n + BLOCK - 1) // BLOCK),)
    ref = reference_run(jk, grid, (BLOCK,), host_args)

    report = jk.lint(block=(BLOCK, 1, 1))
    row = CompatibilityRow(
        kernel=jk.name,
        signature=jk.signature,
        fingerprint=jk.fingerprint(),
        lint_errors=len(report.errors),
        lint_warnings=len(report.warnings),
        lint_findings=[d.to_dict() for d in report.diagnostics],
    )
    for vendor in VENDOR_ORDER:
        vrow = VendorRow(vendor=vendor)
        pairs: list[tuple[Route, SupportCategory]] = []
        for route in routes_for(vendor, Model.PYTHON, Language.PYTHON):
            try:
                _run_route(route, jk, host_args, ref, n)
            except ReproError as exc:
                coverage, ok, err = 0.0, False, f"{type(exc).__name__}: {exc}"
            else:
                coverage, ok, err = 1.0, True, None
            category = classify_route(route, coverage, thresholds)
            pairs.append((route, category))
            vrow.cells.append(RouteCell(
                route_id=route.route_id, label=route.label, via=route.via,
                ok=ok, category=category, coverage=coverage, error=err))
        vrow.primary = aggregate_primary(pairs)
        row.vendors.append(vrow)
    return row
