"""The ``@kernel`` JIT frontend: real Python functions into the matrix.

The decorator compiles a restricted Python subset through the existing
kernel DSL (:mod:`repro.frontends.kernel_dsl`) into abstract kernel IR,
from which every downstream subsystem — toolchains, kernelsan, routes,
the interpreter's trace tier, the service — applies to *user* code
exactly as it does to the bundled library:

    from repro.jit import kernel

    @kernel("void(i64, f64, f64[:], f64[:])")
    def saxpy(n, a, x, y):
        i = gid(0)
        if i < n:
            y[i] = a * x[i] + y[i]

    saxpy.compile(ISA.PTX)          # nvcc -> PTX TargetModule
    saxpy.inspect_asm()             # disassembly for all three ISAs
    saxpy.compatibility_row()       # a personal Figure-1 row

Two paths, mirroring numba-dppy's decorator surface:

* **explicit signature** — ``@kernel("void(i64, f64[:])")``; parameter
  types come from the signature, annotations are optional (and checked
  for agreement when present).  A spelled return type must be ``void``.
* **autojit** — bare ``@kernel`` (or ``@autojit``); compilation is
  deferred to first use and parameter types come from annotations.

Either way the public object is a :class:`JitKernel`; rejection is a
typed :class:`~repro.errors.JitTypeError` carrying the Python source
location of the offending construct.
"""

from __future__ import annotations

import ast
import threading
from dataclasses import dataclass

from repro.enums import ISA, Language, Model
from repro.errors import FrontendError, JitTypeError
from repro.frontends.kernel_dsl import _TYPE_REFS, KernelFn, compile_kernel
from repro.frontends.source import TranslationUnit
from repro.jit.signatures import normalize_signature, signature_text, type_name

#: Server-side limits for submitted kernel source (enforced by
#: ``MatrixService.submit_kernel`` and by :func:`from_source`).
MAX_SOURCE_BYTES = 65536
MAX_PARAMS = 16

#: Which toolchain compiles a jit unit for each target ISA, and under
#: which programming model the unit is presented.  The kernel IR itself
#: is model-agnostic; the (model, toolchain) pair picks the same native
#: route the Python packages use per vendor (nvcc/hipcc/dpcpp).
TARGET_TOOLCHAINS: dict[ISA, tuple[str, Model]] = {
    ISA.PTX: ("nvcc", Model.CUDA),
    ISA.AMDGCN: ("hipcc", Model.HIP),
    ISA.SPIRV: ("dpcpp", Model.SYCL),
}


@dataclass(frozen=True)
class JitOrigin:
    """Provenance stamped on jit-produced :class:`TranslationUnit`\\ s.

    Plays the role :class:`~repro.translate.base.TranslationOrigin`
    plays for translated units: the unit fingerprint itself excludes
    provenance, but ``Toolchain.compile`` folds ``cache_token()`` into
    its cache key, so a jit unit never shares a compile-cache slot with
    a content-identical unit authored natively — while two ``@kernel``
    functions with identical source *do* share one (the token is
    content-derived, not identity-derived).
    """

    source_fingerprint: str
    path: str | None = None
    line: int | None = None

    def cache_token(self) -> tuple[str, str]:
        return ("jit", self.source_fingerprint)


class JitKernel:
    """A Python function compiled on demand into the kernel ecosystem."""

    def __init__(self, pyfunc, argtypes=None, name: str | None = None,
                 source: str | None = None, source_path: str | None = None):
        self.pyfunc = pyfunc
        self.argtypes = tuple(argtypes) if argtypes is not None else None
        self.name = name or pyfunc.__name__
        self._source = source
        self._source_path = source_path
        self._kernelfn: KernelFn | None = None
        self._lock = threading.Lock()

    # -- compilation to IR --------------------------------------------------

    @property
    def kernelfn(self) -> KernelFn:
        """The DSL-compiled kernel (compiled once, lazily)."""
        with self._lock:
            if self._kernelfn is None:
                try:
                    self._kernelfn = compile_kernel(
                        self.pyfunc, name=self.name,
                        param_types=self.argtypes,
                        source=self._source,
                        source_path=self._source_path)
                except JitTypeError:
                    raise
                except FrontendError as exc:
                    raise JitTypeError(
                        str(exc),
                        source_path=getattr(exc, "source_path", None),
                        source_line=getattr(exc, "source_line", None),
                    ) from exc
            return self._kernelfn

    @property
    def ir(self):
        return self.kernelfn.ir

    @property
    def features(self) -> frozenset[str]:
        return self.kernelfn.features

    @property
    def signature(self) -> str:
        """Canonical ``void(...)`` signature (derived for autojit)."""
        if self.argtypes is not None:
            return signature_text(self.argtypes)
        kfn = self.kernelfn
        from repro.frontends.kernel_dsl import ArrayAnn

        derived = tuple(
            ArrayAnn(dt) if is_ptr else _TYPE_REFS[dt.name]
            for is_ptr, dt in zip(kfn.arg_is_pointer, kfn.arg_dtypes))
        return signature_text(derived)

    def fingerprint(self) -> str:
        """Structural content hash; the trace tier and compile cache key
        on exactly this content, so two textually identical kernels are
        one cache entry."""
        from repro.isa.tracing import kernel_fingerprint

        return kernel_fingerprint(self.ir)

    # -- downstream plumbing ------------------------------------------------

    def translation_unit(self, model: Model,
                         language: Language = Language.PYTHON
                         ) -> TranslationUnit:
        """A jit-origin unit presented under ``model`` for compilation.

        ``language`` defaults to Python — the source really is Python —
        but the native toolchains accept C++ units, so
        :meth:`compile` presents CPP (what a real JIT hands nvcc/hipcc).
        """
        tu = TranslationUnit(
            name=f"jit_{self.name}", model=model, language=language)
        tu.add(self.kernelfn)
        tu.origin = JitOrigin(
            source_fingerprint=self.fingerprint(),
            path=self._source_path or self.pyfunc.__code__.co_filename,
            line=self.pyfunc.__code__.co_firstlineno)
        return tu

    def compile(self, target: ISA, options: tuple[str, ...] = (),
                sanitize: bool = False, sanitize_options=None):
        """Compile to one target ISA through its native toolchain."""
        from repro.compilers.registry import get_toolchain

        toolchain_name, model = TARGET_TOOLCHAINS[ISA(target)]
        tu = self.translation_unit(model, language=Language.CPP)
        return get_toolchain(toolchain_name).compile(
            tu, target, options=options, sanitize=sanitize,
            sanitize_options=sanitize_options)

    # -- inspection ---------------------------------------------------------

    def inspect_types(self) -> str:
        """A Numba-style typing dump: signature, params, IR summary."""
        kfn = self.kernelfn
        lines = [f"{self.name} {self.signature}",
                 f"  fingerprint {self.fingerprint()[:16]}"]
        for p in kfn.ir.params:
            kind = "pointer" if p.is_pointer else "scalar"
            lines.append(f"  param {p.name}: {p.dtype.name} ({kind})")
        tags = ", ".join(sorted(kfn.ir.features)) or "none"
        lines.append(f"  features: {tags}")
        lines.append(f"  instructions: {len(kfn.ir.body)}")
        return "\n".join(lines)

    def inspect_asm(self, target: ISA | None = None) -> str | dict[ISA, str]:
        """Disassembly for one target, or ``{ISA: text}`` for all three."""
        if target is not None:
            return self.compile(ISA(target)).disassemble()
        return {isa: self.compile(isa).disassemble()
                for isa in TARGET_TOOLCHAINS}

    def lint(self, block=(256, 1, 1), extents=None):
        """kernelsan over this kernel at an assumed launch geometry."""
        from repro.analysis import AnalysisOptions, LaunchBounds, analyze_module
        from repro.isa.module import ModuleIR

        module = ModuleIR(name=f"jit_{self.name}")
        module.add(self.ir)
        return analyze_module(module, AnalysisOptions(
            bounds=LaunchBounds.of(block=block), extents=extents))

    def compatibility_row(self, n: int = 2048, seed: int = 12345,
                          thresholds=None):
        """Run this kernel across every Python-column route per vendor
        and classify the outcomes — a personal Figure-1 row."""
        from repro.jit.row import build_row

        return build_row(self, n=n, seed=seed, thresholds=thresholds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "compiled" if self._kernelfn is not None else "lazy"
        return f"<JitKernel {self.name} {state}>"


# -- the decorator surface ----------------------------------------------------


def autojit(pyfunc) -> JitKernel:
    """Lazy path: defer compilation, take types from annotations."""
    return JitKernel(pyfunc)


def kernel(signature=None):
    """The ``@kernel`` decorator (numba-dppy-shaped).

    * ``@kernel`` on a bare function -> :func:`autojit`;
    * ``@kernel("void(i64, f64[:])")`` / ``@kernel((i64, f64[:]))`` ->
      explicit-signature :class:`JitKernel` (void-return rule enforced
      at decoration time).
    """
    if signature is None:
        return autojit
    if callable(signature) and not isinstance(signature, (tuple, list)):
        return autojit(signature)
    argtypes = normalize_signature(signature)

    def _wrapped(pyfunc) -> JitKernel:
        return JitKernel(pyfunc, argtypes=argtypes)

    return _wrapped


# -- kernels from source strings (the /kernel/submit path) --------------------

#: Statements allowed at module level in submitted source: a docstring,
#: numeric-constant assignments (captured constants), one function def.
_BANNED_NODES = (
    ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal, ast.Lambda,
    ast.Yield, ast.YieldFrom, ast.Await, ast.Try, ast.With, ast.AsyncWith,
    ast.AsyncFor, ast.ClassDef, ast.AsyncFunctionDef, ast.Delete,
    ast.Raise, ast.Assert, ast.NamedExpr,
)


def _reject(node: ast.AST, msg: str, path: str) -> JitTypeError:
    line = getattr(node, "lineno", None)
    return JitTypeError(f"{path}:{line if line is not None else '?'}: {msg}",
                        source_path=path, source_line=line)


def _check_annotation(node: ast.expr, path: str) -> None:
    """Annotations in submitted source evaluate at ``exec`` time, so
    only the harmless spellings are admitted: ``f64``, ``"f64[:]"``,
    ``f64[:]``."""
    if isinstance(node, ast.Name):
        return
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return
    if (isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name)
            and isinstance(node.slice, ast.Slice)
            and node.slice.lower is None and node.slice.upper is None
            and node.slice.step is None):
        return
    raise _reject(node, "parameter annotations in submitted source must be "
                        "a type name, a type string, or T[:]", path)


def _is_numeric_const(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float, bool))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_numeric_const(node.operand)
    return False


def _validate_submitted(tree: ast.Module, path: str) -> ast.FunctionDef:
    """Static vetting of submitted source before anything is ``exec``'d.

    The goal is that executing the module is inert: the only code that
    *runs* at exec time binds numeric constants and creates one function
    object (whose body never executes).  Everything dynamic — imports,
    decorators, default values, computed annotations — is rejected here,
    and the function is later exec'd with empty builtins.
    """
    fdefs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(fdefs) != 1:
        raise _reject(tree.body[0] if tree.body else tree,
                      f"submitted source must define exactly one kernel "
                      f"function, found {len(fdefs)}", path)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            continue
        if (isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            continue  # module docstring
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_numeric_const(node.value)):
            continue  # captured numeric constant
        raise _reject(node, "only numeric constant assignments and one "
                            "function definition are allowed at module "
                            "level in submitted source", path)
    fdef = fdefs[0]
    if fdef.decorator_list:
        raise _reject(fdef, "submitted kernels must not carry decorators "
                            "(the service applies @kernel itself)", path)
    args = fdef.args
    if args.defaults or args.kw_defaults:
        raise _reject(fdef, "submitted kernels must not have parameter "
                            "defaults", path)
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
        raise _reject(fdef, "submitted kernels take plain positional "
                            "parameters only (no star-args, keyword-only "
                            "or positional-only parameters)", path)
    if len(args.args) > MAX_PARAMS:
        raise _reject(fdef, f"kernels take at most {MAX_PARAMS} parameters, "
                            f"got {len(args.args)}", path)
    for arg in args.args:
        if arg.annotation is not None:
            _check_annotation(arg.annotation, path)
    if fdef.returns is not None:
        _check_annotation(fdef.returns, path)
    for node in ast.walk(fdef):
        if isinstance(node, _BANNED_NODES):
            raise _reject(node, f"{type(node).__name__} is not allowed in "
                                f"submitted kernel source", path)
        if isinstance(node, ast.FunctionDef) and node is not fdef:
            raise _reject(node, "nested function definitions are not "
                                "allowed in submitted kernel source", path)
    return fdef


def from_source(source: str, name: str | None = None, signature=None,
                source_path: str = "<submitted>") -> JitKernel:
    """Build a :class:`JitKernel` from a source string.

    This is the service's ``POST /kernel/submit`` entry point, so the
    source is treated as untrusted: it is statically vetted
    (:func:`_validate_submitted`), size-capped, and executed with empty
    builtins — the only effect of the ``exec`` is creating the (never
    invoked) function object the DSL compiler then parses.
    """
    if not isinstance(source, str):
        raise JitTypeError(
            f"kernel source must be a string, got {type(source).__name__}")
    if len(source.encode("utf-8", errors="replace")) > MAX_SOURCE_BYTES:
        raise JitTypeError(
            f"kernel source exceeds {MAX_SOURCE_BYTES} bytes")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise JitTypeError(
            f"{source_path}:{exc.lineno}: invalid Python: {exc.msg}",
            source_path=source_path, source_line=exc.lineno) from exc
    fdef = _validate_submitted(tree, source_path)
    namespace: dict = {"__builtins__": {}, **_TYPE_REFS}
    exec(compile(tree, source_path, "exec"), namespace)  # noqa: S102 - vetted above
    pyfunc = namespace[fdef.name]
    argtypes = normalize_signature(signature) if signature is not None else None
    return JitKernel(pyfunc, argtypes=argtypes, name=name or fdef.name,
                     source=source, source_path=source_path)
