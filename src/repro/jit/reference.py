"""Pure-Python reference execution of ``@kernel`` functions.

The differential oracle for the jit frontend: run the *original* Python
function (the one the user decorated) directly on numpy buffers, one
simulated thread at a time, with the DSL intrinsics provided as real
callables.  The result must be **bit-identical** to the simulated-device
execution of the compiled kernel — so the scheduling here deliberately
mirrors the interpreter's deterministic order:

* blocks execute sequentially in ascending linear block id;
* within a block, threads run in ascending thread id — either each
  thread to completion (no barriers), or phase-by-phase between
  barriers with a cooperative token-passing scheduler;
* arithmetic goes through the same numpy scalar operations the
  interpreter uses (``np.sqrt`` and friends, numpy dtype propagation),
  so floating-point rounding and accumulation order agree.

Bit-identity is only promised for the well-behaved subset the example
corpus sticks to: ``f64`` floats, non-negative integers (Python ``//``
floors where the ISA truncates — they agree on non-negative values),
and data-race-free phases (threads in one barrier phase don't write
locations other threads in the same phase read).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.frontends.kernel_dsl import ArrayAnn, TypeRef
from repro.isa.instructions import Barrier, walk

#: numpy scalar constructor per DSL dtype name — doubles as the
#: conversion intrinsic (``f64(x)``) and the first argument of
#: ``shared(f64, n)``.
_NP_TYPES = {
    "f32": np.float32, "f64": np.float64,
    "i32": np.int32, "i64": np.int64,
    "u32": np.uint32, "u64": np.uint64,
}


@dataclass
class _BlockState:
    """Per-block shared state: shared-memory arrays by allocation order."""

    shared_arrays: list[np.ndarray] = field(default_factory=list)


class _ThreadCtx(threading.local):
    """The currently executing simulated thread (per OS thread)."""

    def __init__(self):
        self.tid = (0, 0, 0)
        self.bid = (0, 0, 0)
        self.block = (1, 1, 1)
        self.grid = (1, 1, 1)
        self.warp_size = 32
        self.block_state: _BlockState | None = None
        self.shared_index = 0
        self.barrier_wait = None  # set by the cooperative scheduler


def _intrinsics(ctx: _ThreadCtx) -> dict:
    """The DSL intrinsic surface as real Python callables over ``ctx``."""

    def gid(d):
        return np.int64(ctx.bid[d] * ctx.block[d] + ctx.tid[d])

    def lid(d):
        return np.int64(ctx.tid[d])

    def bid(d):
        return np.int64(ctx.bid[d])

    def bdim(d):
        return np.int64(ctx.block[d])

    def gdim(d):
        return np.int64(ctx.grid[d])

    def gsize(d):
        return np.int64(ctx.grid[d] * ctx.block[d])

    def lane():
        linear = (ctx.tid[2] * ctx.block[1] + ctx.tid[1]) * ctx.block[0] \
            + ctx.tid[0]
        return np.int64(linear % ctx.warp_size)

    def warpsize():
        return np.int64(ctx.warp_size)

    def barrier():
        if ctx.barrier_wait is None:
            raise RuntimeError(
                "barrier() reached outside the cooperative scheduler")
        ctx.barrier_wait()

    def shared(tref, count):
        dtype = _np_dtype(tref)
        state = ctx.block_state
        idx = ctx.shared_index
        ctx.shared_index += 1
        if idx == len(state.shared_arrays):
            state.shared_arrays.append(np.zeros(int(count), dtype=dtype))
        return state.shared_arrays[idx]

    def _atomic(op):
        def apply(arr, idx, val):
            old = arr[idx]
            arr[idx] = op(old, arr.dtype.type(val))
            return old
        return apply

    def atomic_cas(arr, idx, expected, desired):
        old = arr[idx]
        if old == arr.dtype.type(expected):
            arr[idx] = arr.dtype.type(desired)
        return old

    env = {
        "gid": gid, "lid": lid, "bid": bid, "bdim": bdim, "gdim": gdim,
        "gsize": gsize, "lane": lane, "warpsize": warpsize,
        "barrier": barrier, "shared": shared,
        "atomic_add": _atomic(lambda a, b: a + b),
        "atomic_min": _atomic(np.minimum),
        "atomic_max": _atomic(np.maximum),
        "atomic_exch": _atomic(lambda a, b: b),
        "atomic_cas": atomic_cas,
        # math — the interpreter evaluates these through numpy, so the
        # reference must too (math.floor returns int; np.floor doesn't).
        "sqrt": np.sqrt, "rsqrt": lambda v: 1.0 / np.sqrt(v),
        "exp": np.exp, "log": np.log, "sin": np.sin, "cos": np.cos,
        "tanh": np.tanh, "floor": np.floor, "ceil": np.ceil,
        "abs": np.abs, "min": np.minimum, "max": np.maximum,
    }
    env.update({name: t for name, t in _NP_TYPES.items()})
    return env


def _np_dtype(tref):
    """``shared()``'s first argument: a TypeRef, a numpy scalar type
    (when running under the intrinsics overlay), or a dtype name."""
    if isinstance(tref, TypeRef):
        return np.dtype(_NP_TYPES[tref.dtype.name])
    if isinstance(tref, str):
        return np.dtype(_NP_TYPES[tref])
    return np.dtype(tref)


def _uses_barrier(jk) -> bool:
    return any(isinstance(i, Barrier) for i in walk(jk.ir.body))


def _bind(jk, env: dict):
    """The user's function with the intrinsic overlay as its globals."""
    import types

    pyfunc = jk.pyfunc
    g = dict(pyfunc.__globals__)
    g.update(env)
    return types.FunctionType(pyfunc.__code__, g, pyfunc.__name__,
                              pyfunc.__defaults__, pyfunc.__closure__)


def _coerce_args(jk, args):
    """Scalars -> numpy scalars of the declared dtype; arrays unchanged."""
    kfn = jk.kernelfn
    out = []
    for value, is_ptr, dt in zip(args, kfn.arg_is_pointer, kfn.arg_dtypes):
        want = np.dtype(_NP_TYPES[dt.name])
        if is_ptr:
            arr = np.asarray(value)
            if arr.dtype != want:
                raise TypeError(
                    f"array argument has dtype {arr.dtype}, kernel "
                    f"declares {dt.name}")
            out.append(arr)
        else:
            out.append(want.type(value))
    return tuple(out)


def _norm_shape(shape) -> tuple[int, int, int]:
    if isinstance(shape, int):
        shape = (shape,)
    shape = tuple(int(s) for s in shape)
    return shape + (1,) * (3 - len(shape))


def _thread_ids(block):
    for tz in range(block[2]):
        for ty in range(block[1]):
            for tx in range(block[0]):
                yield (tx, ty, tz)


def reference_launch(jk, grid, block, args, warp_size: int = 32) -> None:
    """Execute ``jk``'s Python source directly over ``args`` in place.

    ``grid``/``block`` are ints or tuples, as for the simulated device.
    Arrays in ``args`` must be numpy arrays of the declared dtypes; they
    are mutated in place (kernels are void).
    """
    grid = _norm_shape(grid)
    block = _norm_shape(block)
    args = _coerce_args(jk, args)
    ctx = _ThreadCtx()
    fn = _bind(jk, _intrinsics(ctx))
    cooperative = _uses_barrier(jk)

    for bz in range(grid[2]):
        for by in range(grid[1]):
            for bx in range(grid[0]):
                state = _BlockState()
                ctx.bid = (bx, by, bz)
                ctx.grid = grid
                ctx.block = block
                ctx.warp_size = warp_size
                ctx.block_state = state
                if cooperative:
                    _run_block_cooperative(
                        fn, args, (bx, by, bz), grid, block, warp_size,
                        state)
                else:
                    for tid in _thread_ids(block):
                        ctx.tid = tid
                        ctx.shared_index = 0
                        fn(*args)


def _run_block_cooperative(fn, args, bid, grid, block, warp_size, state):
    """One block with barriers: real threads, one runnable at a time.

    Each simulated thread gets an OS thread but only ever runs while it
    holds the baton; at a ``barrier()`` (or on return) it hands the
    baton to the next thread in ascending tid order.  When the wave
    reaches the end of the roster the phase is over and the baton
    restarts at the lowest still-running thread — which is exactly the
    interpreter's deterministic ascending-lane order per phase, so
    atomic application order (and therefore float accumulation order)
    matches bit for bit.
    """
    tids = list(_thread_ids(block))
    go = [threading.Event() for _ in tids]
    done_or_waiting = [threading.Event() for _ in tids]
    finished = [False] * len(tids)
    errors: list[BaseException] = []

    def runner(i, tid):
        ctx = _ThreadCtx()
        ctx.tid = tid
        ctx.bid = bid
        ctx.grid = grid
        ctx.block = block
        ctx.warp_size = warp_size
        ctx.block_state = state
        ctx.shared_index = 0

        def wait_at_barrier():
            done_or_waiting[i].set()
            go[i].wait()
            go[i].clear()

        ctx.barrier_wait = wait_at_barrier
        bound = _bind_ctx(fn, ctx)
        try:
            go[i].wait()
            go[i].clear()
            bound(*args)
        except BaseException as exc:  # noqa: BLE001 - re-raised by controller
            errors.append(exc)
        finally:
            finished[i] = True
            done_or_waiting[i].set()

    threads = [threading.Thread(target=runner, args=(i, tid), daemon=True)
               for i, tid in enumerate(tids)]
    for t in threads:
        t.start()
    while not all(finished):
        for i in range(len(tids)):
            if finished[i]:
                continue
            go[i].set()
            done_or_waiting[i].wait()
            done_or_waiting[i].clear()
            if errors:
                # daemon threads still parked at a barrier die with the
                # process; the first error is the launch's outcome
                raise errors[0]
    for t in threads:
        t.join(timeout=5)


def _bind_ctx(fn, ctx: _ThreadCtx):
    """Rebind ``fn`` so its intrinsics read this thread's ``ctx``."""
    import types

    g = dict(fn.__globals__)
    g.update(_intrinsics(ctx))
    return types.FunctionType(fn.__code__, g, fn.__name__,
                              fn.__defaults__, fn.__closure__)


def reference_run(jk, grid, block, args, warp_size: int = 32):
    """Copy array args, run the reference, return the copies.

    Convenience wrapper for tests: scalars pass through, arrays are
    copied so the caller's buffers are untouched.
    """
    kfn = jk.kernelfn
    copies = [np.array(a, copy=True) if is_ptr else a
              for a, is_ptr in zip(args, kfn.arg_is_pointer)]
    reference_launch(jk, grid, block, copies, warp_size=warp_size)
    return copies
