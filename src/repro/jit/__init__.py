"""``repro.jit`` — the ``@kernel`` JIT frontend.

Bring-your-own-kernel entry point: decorate a restricted-Python
function, get a :class:`~repro.jit.api.JitKernel` that compiles to all
three target ISAs, lints under kernelsan, verifies against a
pure-Python reference, and rates itself across every Python-package
route per vendor (a personal Figure-1 row).

    from repro.jit import kernel

    @kernel("void(i64, f64, f64[:], f64[:])")
    def saxpy(n, a, x, y):
        i = gid(0)
        if i < n:
            y[i] = a * x[i] + y[i]
"""

from repro.errors import JitTypeError
from repro.jit.api import (
    MAX_PARAMS,
    MAX_SOURCE_BYTES,
    TARGET_TOOLCHAINS,
    JitKernel,
    JitOrigin,
    autojit,
    from_source,
    kernel,
)
from repro.jit.reference import reference_launch, reference_run
from repro.jit.row import CompatibilityRow, RouteCell, VendorRow, build_row
from repro.jit.signatures import normalize_signature, signature_text

__all__ = [
    "JitKernel",
    "JitOrigin",
    "JitTypeError",
    "kernel",
    "autojit",
    "from_source",
    "build_row",
    "CompatibilityRow",
    "VendorRow",
    "RouteCell",
    "reference_launch",
    "reference_run",
    "normalize_signature",
    "signature_text",
    "MAX_SOURCE_BYTES",
    "MAX_PARAMS",
    "TARGET_TOOLCHAINS",
]
